//! Secure comparison of signed values, built on Yao's protocol.
//!
//! The DBSCAN protocols compare signed quantities (masked distances, share
//! differences), while Algorithm 1 wants inputs in `[1, n0]`. A
//! [`ComparisonDomain`] performs the affine shift, and [`Comparator`]
//! selects the backend:
//!
//! * [`Comparator::Yao`] — the faithful Algorithm 1. `O(n0)` Paillier
//!   decryptions per comparison, so only usable when the agreed domain is
//!   small (≤ [`crate::millionaires::MAX_YAO_DOMAIN`]).
//! * [`Comparator::Ideal`] — the ideal comparison functionality, simulated
//!   in-process: same message pattern, payload sizes charged from
//!   [`crate::millionaires::modeled_message_sizes`], same single-bit output
//!   to both parties. **The wire content is not private** (this is a
//!   measurement substitution, not a cryptographic protocol — see DESIGN.md
//!   §3); it exists so full clustering runs can use realistic domains and
//!   statistically hiding masks that would make the faithful YMPP take
//!   CPU-years, while still reporting the traffic the faithful protocol
//!   would have produced.

use crate::context::ProtocolContext;
use crate::error::SmcError;
use crate::millionaires::{self, YaoConfig};
use ppds_observe::trace;
use ppds_paillier::{Keypair, PublicKey};
use ppds_transport::Channel;

/// Which secure-comparison backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Comparator {
    /// Faithful Algorithm 1 (YMPP). Cost: `O(n0)` decryptions + `O(c2·n0)`
    /// bits per comparison.
    Yao,
    /// Ideal functionality with YMPP-equivalent transcript accounting.
    #[default]
    Ideal,
    /// Bitwise DGK-style comparison: `O(log n0)` ciphertexts per
    /// comparison, same one-bit output to both parties (see
    /// [`crate::bitwise`]). The practical backend for the enhanced
    /// protocol's `2^σ`-wide share domains. Rides the exponentiation
    /// kernels (DESIGN.md §12): bit encryptions share one exponent
    /// recoding, ciphertext validation batches `ℓ` GCDs into one
    /// Montgomery batch inversion, and the packed reply aggregates slots
    /// with one Straus/Pippenger multi-exponentiation — all byte-identical
    /// to the per-element ladders they replace.
    Dgk,
}

/// Comparison operator between Alice's and Bob's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `alice < bob`
    Lt,
    /// `alice ≤ bob`
    Leq,
}

/// The signed interval both parties agree their inputs fall in.
///
/// Yao inputs become `value - lo + 1 ∈ [1, n0]` with one extra slot of
/// headroom so `≤` can be evaluated as `< (j + 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparisonDomain {
    /// Smallest representable value.
    pub lo: i64,
    /// Largest representable value.
    pub hi: i64,
}

impl ComparisonDomain {
    /// Domain `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty comparison domain [{lo}, {hi}]");
        ComparisonDomain { lo, hi }
    }

    /// Symmetric domain `[-bound, bound]`.
    pub fn symmetric(bound: i64) -> Self {
        assert!(bound >= 0, "negative bound {bound}");
        ComparisonDomain::new(-bound, bound)
    }

    /// The Yao domain size `n0` (one slot of headroom included for `Leq`).
    pub fn n0(&self) -> u64 {
        (self.hi - self.lo) as u64 + 2
    }

    /// Shifts a value into `[1, n0 - 1]`.
    fn encode(&self, value: i64) -> Result<u64, SmcError> {
        if value < self.lo || value > self.hi {
            return Err(SmcError::DomainViolation {
                value,
                lo: self.lo,
                hi: self.hi,
            });
        }
        Ok((value - self.lo) as u64 + 1)
    }

    fn yao_config(&self) -> YaoConfig {
        YaoConfig { n0: self.n0() }
    }
}

/// Alice's side of one secure comparison; returns `alice_value OP bob_value`.
/// Alice must hold the Paillier keypair used by the Yao backend. `ctx` is
/// the record scope of this comparison (`step_ctx.at(record)`); the batch
/// entry points derive the same scopes per item, so framings agree.
///
/// `packed` selects the plaintext-slot-packed transport
/// (`ProtocolConfig::packing`): the DGK backend ships its masked verdict
/// vector as `⌈ℓ/capacity⌉` packed words, and the Ideal backend pads its
/// verdict-sized message to the packed transcript size (see
/// [`IDEAL_PADDING_CAP`]). Outcomes are identical either way; the faithful
/// Yao backend has no packed form (its message 2 is plaintext residues)
/// and ignores the flag, exactly as it ignores batching.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn compare_alice<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    keypair: &Keypair,
    value: i64,
    op: CmpOp,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let i = domain.encode(value)?;
    match comparator {
        Comparator::Yao => millionaires::yao_alice(chan, keypair, i, &domain.yao_config(), ctx),
        Comparator::Ideal => ideal_alice(chan, keypair.public.bits(), i, op, domain, packed),
        Comparator::Dgk if packed => {
            crate::bitwise::dgk_packed_alice(chan, keypair, i, domain.n0(), ctx)
        }
        Comparator::Dgk => crate::bitwise::dgk_alice(chan, keypair, i, domain.n0(), ctx),
    }
}

/// Bob's side of one secure comparison; returns `alice_value OP bob_value`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn compare_bob<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    alice_pk: &PublicKey,
    value: i64,
    op: CmpOp,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let j = domain.encode(value)?;
    // `i ≤ j` is evaluated as `i < j + 1`; the domain reserves the headroom.
    let j_eff = match op {
        CmpOp::Lt => j,
        CmpOp::Leq => j + 1,
    };
    match comparator {
        Comparator::Yao => millionaires::yao_bob(chan, alice_pk, j_eff, &domain.yao_config(), ctx),
        Comparator::Ideal => ideal_bob(chan, alice_pk.bits(), j_eff, domain, packed),
        Comparator::Dgk if packed => {
            crate::bitwise::dgk_packed_bob(chan, alice_pk, j_eff, domain.n0(), ctx)
        }
        Comparator::Dgk => crate::bitwise::dgk_bob(chan, alice_pk, j_eff, domain.n0(), ctx),
    }
}

/// Round-batched Alice side: `values.len()` independent comparisons against
/// Bob's equally long vector, all sharing one `op` and one `domain`, packed
/// into a constant number of wire rounds instead of one round-trip each.
///
/// Both parties must call the batch entry points with vectors of the same
/// length (the protocols guarantee this: both sides know the candidate set
/// size). Per element, the outcome is exactly
/// `compare_alice(values[i]) OP compare_bob(values[i])` — the Ideal and Dgk
/// backends pack their per-comparison messages into shared [`Batch`]
/// frames; the faithful Yao backend has no batched form (Algorithm 1's
/// z-sequence is per-comparison interactive state), so it degrades to the
/// sequential loop with identical results and no round win.
///
/// Comparison `i` of the batch draws from `ctx.rng_for(i)` — the stream a
/// sequential caller would get from [`compare_alice`] scoped `ctx.at(i)`.
///
/// [`Batch`]: ppds_transport::Batch
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn compare_batch_alice<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    keypair: &Keypair,
    values: &[i64],
    op: CmpOp,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("cmp_batch", || chan.metrics());
    let is: Vec<u64> = values
        .iter()
        .map(|&v| domain.encode(v))
        .collect::<Result<_, _>>()?;
    let out = match comparator {
        Comparator::Yao => is
            .iter()
            .enumerate()
            .map(|(idx, &i)| {
                millionaires::yao_alice(chan, keypair, i, &domain.yao_config(), &ctx.at(idx as u64))
            })
            .collect(),
        Comparator::Ideal => {
            ideal_batch_alice(chan, keypair.public.bits(), &is, op, domain, packed)
        }
        Comparator::Dgk if packed => {
            crate::bitwise::dgk_batch_packed_alice(chan, keypair, &is, domain.n0(), ctx)
        }
        Comparator::Dgk => crate::bitwise::dgk_batch_alice(chan, keypair, &is, domain.n0(), ctx),
    }?;
    span.end(|| chan.metrics());
    Ok(out)
}

/// Round-batched Bob side of [`compare_batch_alice`].
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn compare_batch_bob<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    alice_pk: &PublicKey,
    values: &[i64],
    op: CmpOp,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    if values.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("cmp_batch", || chan.metrics());
    let j_effs: Vec<u64> = values
        .iter()
        .map(|&v| {
            domain.encode(v).map(|j| match op {
                CmpOp::Lt => j,
                CmpOp::Leq => j + 1,
            })
        })
        .collect::<Result<_, _>>()?;
    let out = match comparator {
        Comparator::Yao => j_effs
            .iter()
            .enumerate()
            .map(|(idx, &j)| {
                millionaires::yao_bob(chan, alice_pk, j, &domain.yao_config(), &ctx.at(idx as u64))
            })
            .collect(),
        Comparator::Ideal => ideal_batch_bob(chan, alice_pk.bits(), &j_effs, domain, packed),
        Comparator::Dgk if packed => {
            crate::bitwise::dgk_batch_packed_bob(chan, alice_pk, &j_effs, domain.n0(), ctx)
        }
        Comparator::Dgk => crate::bitwise::dgk_batch_bob(chan, alice_pk, &j_effs, domain.n0(), ctx),
    }?;
    span.end(|| chan.metrics());
    Ok(out)
}

/// Share comparison (§5): Alice holds `u_a, u_b`, Bob holds `v_a, v_b`,
/// shares of `dist_a = u_a - v_a` and `dist_b = u_b - v_b`. Both learn
/// whether `dist_a < dist_b`, via `u_a - u_b < v_a - v_b`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn share_less_than_alice<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    keypair: &Keypair,
    u_a: i64,
    u_b: i64,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let diff = u_a.checked_sub(u_b).ok_or(SmcError::DomainViolation {
        value: i64::MAX,
        lo: domain.lo,
        hi: domain.hi,
    })?;
    compare_alice(
        comparator,
        chan,
        keypair,
        diff,
        CmpOp::Lt,
        domain,
        packed,
        ctx,
    )
}

/// Bob's half of [`share_less_than_alice`].
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn share_less_than_bob<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    alice_pk: &PublicKey,
    v_a: i64,
    v_b: i64,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let diff = v_a.checked_sub(v_b).ok_or(SmcError::DomainViolation {
        value: i64::MAX,
        lo: domain.lo,
        hi: domain.hi,
    })?;
    compare_bob(
        comparator,
        chan,
        alice_pk,
        diff,
        CmpOp::Lt,
        domain,
        packed,
        ctx,
    )
}

fn share_diffs(pairs: &[(i64, i64)], domain: &ComparisonDomain) -> Result<Vec<i64>, SmcError> {
    pairs
        .iter()
        .map(|&(a, b)| {
            a.checked_sub(b).ok_or(SmcError::DomainViolation {
                value: i64::MAX,
                lo: domain.lo,
                hi: domain.hi,
            })
        })
        .collect()
}

/// Round-batched share comparisons: each pair `(u_a, u_b)` against Bob's
/// `(v_a, v_b)` decides `dist_a < dist_b`, all in a constant number of wire
/// rounds (see [`compare_batch_alice`]). Used by the enhanced protocol's
/// batched quickselect partitions.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn share_less_than_batch_alice<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    keypair: &Keypair,
    pairs: &[(i64, i64)],
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    let diffs = share_diffs(pairs, domain)?;
    compare_batch_alice(
        comparator,
        chan,
        keypair,
        &diffs,
        CmpOp::Lt,
        domain,
        packed,
        ctx,
    )
}

/// Bob's half of [`share_less_than_batch_alice`].
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn share_less_than_batch_bob<C: Channel>(
    comparator: Comparator,
    chan: &mut C,
    alice_pk: &PublicKey,
    pairs: &[(i64, i64)],
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    let diffs = share_diffs(pairs, domain)?;
    compare_batch_bob(
        comparator,
        chan,
        alice_pk,
        &diffs,
        CmpOp::Lt,
        domain,
        packed,
        ctx,
    )
}

// ---------------------------------------------------------------------------
// Ideal backend
// ---------------------------------------------------------------------------

/// Physical padding cap for the Ideal backend. Below the cap, Ideal
/// transcripts are byte-identical to modeled YMPP traffic (validated by the
/// `ideal_traffic_matches_yao_traffic` test); above it, physically shipping
/// the modeled bytes would be pure waste (the faithful protocol at such a
/// domain is exactly what the Ideal backend exists to avoid), so callers
/// account the remainder analytically via
/// [`crate::millionaires::modeled_message_sizes`].
pub const IDEAL_PADDING_CAP: u64 = 4096;

/// Zero padding sized so a message's payload matches the modeled YMPP
/// message (`used` bytes already carry the actual content), capped at
/// [`IDEAL_PADDING_CAP`].
fn padding(modeled: u64, used: u64) -> Vec<u8> {
    vec![0u8; modeled.saturating_sub(used).min(IDEAL_PADDING_CAP) as usize]
}

/// Packing factor the Ideal backend charges its verdict-sized message
/// under `packing`: the capacity of the packed-DGK verdict layout at this
/// key size and domain (1 — no reduction — when the key fits no layout, or
/// when packing is off). Derived from public data only, so both sides pad
/// identically.
fn ideal_packing_factor(key_bits: usize, domain: &ComparisonDomain, packed: bool) -> u64 {
    if !packed {
        return 1;
    }
    crate::bitwise::dgk_pack_layout(key_bits, domain.n0())
        .map_or(1, |layout| layout.capacity() as u64)
}

/// Padding for the verdict-sized message (YMPP message 2): under packing,
/// each shipped byte stands for `factor` slot bytes of the faithful
/// backend's packed verdict words, so the *physical* padding shrinks by
/// the layout capacity while the [`crate::millionaires`] model — and with
/// it the caller's `YaoLedger` — keeps charging the canonical unpacked
/// cost, invariant across framings and packings.
fn verdict_padding(modeled: u64, used: u64, factor: u64) -> Vec<u8> {
    vec![0u8; (modeled.saturating_sub(used).min(IDEAL_PADDING_CAP) / factor.max(1)) as usize]
}

fn ideal_alice<C: Channel>(
    chan: &mut C,
    key_bits: usize,
    i: u64,
    _op: CmpOp,
    domain: &ComparisonDomain,
    packed: bool,
) -> Result<bool, SmcError> {
    let (m1, m2, m3) = millionaires::modeled_message_sizes(key_bits, domain.n0());
    let factor = ideal_packing_factor(key_bits, domain, packed);
    // Message 1 (Bob→Alice in YMPP): Bob's effective input.
    let (j_eff, _pad): (u64, Vec<u8>) = chan.recv()?;
    // Message 2 (Alice→Bob): the result, padded to the z-sequence size
    // (packed: to its packed-word share).
    let result = i < j_eff;
    chan.send(&(result, verdict_padding(m2, 5, factor)))?;
    // Message 3 (Bob→Alice): conclusion echo, as in Algorithm 1 step 7.
    let (echoed, _pad): (bool, Vec<u8>) = chan.recv()?;
    if echoed != result {
        return Err(SmcError::protocol("ideal comparator echo mismatch"));
    }
    let _ = (m1, m3);
    Ok(result)
}

fn ideal_bob<C: Channel>(
    chan: &mut C,
    key_bits: usize,
    j_eff: u64,
    domain: &ComparisonDomain,
    packed: bool,
) -> Result<bool, SmcError> {
    let (m1, _m2, m3) = millionaires::modeled_message_sizes(key_bits, domain.n0());
    let _ = packed; // Bob's messages model single values; nothing to pack.
    chan.send(&(j_eff, padding(m1, 12)))?;
    let (result, _pad): (bool, Vec<u8>) = chan.recv()?;
    chan.send(&(result, padding(m3, 5)))?;
    Ok(result)
}

/// Batched Ideal backend: the three per-comparison messages of
/// [`ideal_alice`]/[`ideal_bob`] become three [`Batch`] frames carrying one
/// item per comparison, each item padded exactly as its unbatched
/// counterpart — so modeled bytes stay per-comparison comparable while the
/// round count drops from `3k` to 3.
///
/// [`Batch`]: ppds_transport::Batch
fn ideal_batch_alice<C: Channel>(
    chan: &mut C,
    key_bits: usize,
    is: &[u64],
    _op: CmpOp,
    domain: &ComparisonDomain,
    packed: bool,
) -> Result<Vec<bool>, SmcError> {
    let (m1, m2, m3) = millionaires::modeled_message_sizes(key_bits, domain.n0());
    let factor = ideal_packing_factor(key_bits, domain, packed);
    // Round 1 (Bob→Alice): Bob's effective inputs.
    let incoming: Vec<(u64, Vec<u8>)> = chan.recv_batch()?;
    if incoming.len() != is.len() {
        return Err(SmcError::protocol(format!(
            "ideal batch arity mismatch: {} inputs vs {} received",
            is.len(),
            incoming.len()
        )));
    }
    let results: Vec<bool> = is
        .iter()
        .zip(&incoming)
        .map(|(&i, &(j_eff, _))| i < j_eff)
        .collect();
    // Round 2 (Alice→Bob): the results, each padded to the z-sequence size
    // (packed: to its packed-word share).
    let reply: Vec<(bool, Vec<u8>)> = results
        .iter()
        .map(|&r| (r, verdict_padding(m2, 5, factor)))
        .collect();
    chan.send_batch(&reply)?;
    // Round 3 (Bob→Alice): conclusion echoes, as in Algorithm 1 step 7.
    let echoed: Vec<(bool, Vec<u8>)> = chan.recv_batch()?;
    if echoed.len() != results.len() || echoed.iter().zip(&results).any(|(e, &r)| e.0 != r) {
        return Err(SmcError::protocol("ideal batch comparator echo mismatch"));
    }
    let _ = (m1, m3);
    Ok(results)
}

fn ideal_batch_bob<C: Channel>(
    chan: &mut C,
    key_bits: usize,
    j_effs: &[u64],
    domain: &ComparisonDomain,
    packed: bool,
) -> Result<Vec<bool>, SmcError> {
    let (m1, _m2, m3) = millionaires::modeled_message_sizes(key_bits, domain.n0());
    let _ = packed; // Bob's messages model single values; nothing to pack.
    let out: Vec<(u64, Vec<u8>)> = j_effs.iter().map(|&j| (j, padding(m1, 12))).collect();
    chan.send_batch(&out)?;
    let replies: Vec<(bool, Vec<u8>)> = chan.recv_batch()?;
    if replies.len() != j_effs.len() {
        return Err(SmcError::protocol(format!(
            "ideal batch arity mismatch: {} inputs vs {} replies",
            j_effs.len(),
            replies.len()
        )));
    }
    let results: Vec<bool> = replies.iter().map(|r| r.0).collect();
    let echo: Vec<(bool, Vec<u8>)> = results.iter().map(|&r| (r, padding(m3, 5))).collect();
    chan.send_batch(&echo)?;
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{alice_keypair, ctx};
    use ppds_transport::duplex;

    fn run(comparator: Comparator, a: i64, b: i64, op: CmpOp, domain: ComparisonDomain) -> bool {
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            compare_alice(
                comparator,
                &mut achan,
                alice_keypair(),
                a,
                op,
                &domain,
                false,
                &ctx(500),
            )
            .unwrap()
        });
        let bob_view = compare_bob(
            comparator,
            &mut bchan,
            &alice_keypair().public,
            b,
            op,
            &domain,
            false,
            &ctx(501),
        )
        .unwrap();
        let alice_view = alice.join().unwrap();
        assert_eq!(alice_view, bob_view, "views must agree");
        alice_view
    }

    #[test]
    fn both_backends_agree_with_native_comparison() {
        let domain = ComparisonDomain::symmetric(10);
        for comparator in [Comparator::Yao, Comparator::Ideal, Comparator::Dgk] {
            for a in [-10i64, -3, 0, 1, 10] {
                for b in [-10i64, -1, 0, 1, 10] {
                    assert_eq!(
                        run(comparator, a, b, CmpOp::Lt, domain),
                        a < b,
                        "{comparator:?}: {a} < {b}"
                    );
                    assert_eq!(
                        run(comparator, a, b, CmpOp::Leq, domain),
                        a <= b,
                        "{comparator:?}: {a} <= {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn asymmetric_domain() {
        let domain = ComparisonDomain::new(5, 25);
        assert!(run(Comparator::Yao, 5, 25, CmpOp::Lt, domain));
        assert!(!run(Comparator::Yao, 25, 5, CmpOp::Lt, domain));
        assert!(run(Comparator::Ideal, 25, 25, CmpOp::Leq, domain));
    }

    #[test]
    fn out_of_domain_is_error() {
        let domain = ComparisonDomain::symmetric(5);
        let (mut achan, _b) = duplex();
        assert!(matches!(
            compare_alice(
                Comparator::Ideal,
                &mut achan,
                alice_keypair(),
                6,
                CmpOp::Lt,
                &domain,
                false,
                &ctx(1)
            ),
            Err(SmcError::DomainViolation { value: 6, .. })
        ));
    }

    #[test]
    fn leq_at_domain_upper_edge_works() {
        // j = hi uses the reserved headroom slot; must not error.
        let domain = ComparisonDomain::symmetric(4);
        assert!(run(Comparator::Yao, 4, 4, CmpOp::Leq, domain));
        assert!(run(Comparator::Ideal, 4, 4, CmpOp::Leq, domain));
        assert!(!run(Comparator::Yao, 4, 4, CmpOp::Lt, domain));
    }

    #[test]
    fn share_comparison_matches_plain() {
        let domain = ComparisonDomain::symmetric(100);
        // dist_a = 7 (u=50, v=43), dist_b = 12 (u=20, v=8)
        let (u_a, v_a) = (50i64, 43i64);
        let (u_b, v_b) = (20i64, 8i64);
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            share_less_than_alice(
                Comparator::Yao,
                &mut achan,
                alice_keypair(),
                u_a,
                u_b,
                &domain,
                false,
                &ctx(2),
            )
            .unwrap()
        });
        let bob_view = share_less_than_bob(
            Comparator::Yao,
            &mut bchan,
            &alice_keypair().public,
            v_a,
            v_b,
            &domain,
            false,
            &ctx(3),
        )
        .unwrap();
        let alice_view = alice.join().unwrap();
        assert!(alice_view, "7 < 12");
        assert!(bob_view);
    }

    #[test]
    fn ideal_traffic_matches_yao_traffic() {
        // The Ideal comparator must charge the transcript the same bytes the
        // faithful protocol produces (within BigUint minimal-length noise).
        let domain = ComparisonDomain::symmetric(16);
        let mut totals = Vec::new();
        for comparator in [Comparator::Yao, Comparator::Ideal] {
            let (mut achan, mut bchan) = duplex();
            let alice = std::thread::spawn(move || {
                compare_alice(
                    comparator,
                    &mut achan,
                    alice_keypair(),
                    3,
                    CmpOp::Lt,
                    &domain,
                    false,
                    &ctx(7),
                )
                .unwrap();
                achan.metrics().total_bytes()
            });
            compare_bob(
                comparator,
                &mut bchan,
                &alice_keypair().public,
                5,
                CmpOp::Lt,
                &domain,
                false,
                &ctx(8),
            )
            .unwrap();
            totals.push(alice.join().unwrap() as f64);
        }
        let (yao, ideal) = (totals[0], totals[1]);
        let rel_err = (yao - ideal).abs() / yao;
        assert!(rel_err < 0.05, "yao = {yao}, ideal = {ideal}");
    }

    fn run_batch(
        comparator: Comparator,
        pairs: &[(i64, i64)],
        op: CmpOp,
        domain: ComparisonDomain,
    ) -> (Vec<bool>, ppds_transport::MetricsSnapshot) {
        let (mut achan, mut bchan) = duplex();
        let a_vals: Vec<i64> = pairs.iter().map(|p| p.0).collect();
        let b_vals: Vec<i64> = pairs.iter().map(|p| p.1).collect();
        let alice = std::thread::spawn(move || {
            let out = compare_batch_alice(
                comparator,
                &mut achan,
                alice_keypair(),
                &a_vals,
                op,
                &domain,
                false,
                &ctx(600),
            )
            .unwrap();
            (out, achan.metrics())
        });
        let bob_view = compare_batch_bob(
            comparator,
            &mut bchan,
            &alice_keypair().public,
            &b_vals,
            op,
            &domain,
            false,
            &ctx(601),
        )
        .unwrap();
        let (alice_view, metrics) = alice.join().unwrap();
        assert_eq!(alice_view, bob_view, "views must agree");
        (alice_view, metrics)
    }

    #[test]
    fn batch_matches_native_comparison_all_backends() {
        let domain = ComparisonDomain::symmetric(10);
        let pairs: Vec<(i64, i64)> = vec![(-10, 10), (0, 0), (3, -3), (10, 10), (-1, 0), (7, 6)];
        for comparator in [Comparator::Yao, Comparator::Ideal, Comparator::Dgk] {
            for op in [CmpOp::Lt, CmpOp::Leq] {
                let (got, _) = run_batch(comparator, &pairs, op, domain);
                for (i, &(a, b)) in pairs.iter().enumerate() {
                    let expect = match op {
                        CmpOp::Lt => a < b,
                        CmpOp::Leq => a <= b,
                    };
                    assert_eq!(got[i], expect, "{comparator:?} {op:?}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn batch_collapses_rounds_for_ideal_and_dgk() {
        let domain = ComparisonDomain::symmetric(16);
        let pairs: Vec<(i64, i64)> = (0..20).map(|i| (i % 7 - 3, (i % 5) - 2)).collect();
        for comparator in [Comparator::Ideal, Comparator::Dgk] {
            let (_, m) = run_batch(comparator, &pairs, CmpOp::Lt, domain);
            // 3 frames for 20 comparisons; unbatched would be 60 rounds.
            assert_eq!(m.total_rounds(), 3, "{comparator:?}");
            assert_eq!(m.total_messages(), 3 * pairs.len() as u64, "{comparator:?}");
        }
        // The faithful Yao backend has no batched form: rounds stay 3/cmp.
        let (_, m) = run_batch(Comparator::Yao, &pairs[..2], CmpOp::Lt, domain);
        assert_eq!(m.total_rounds(), 6);
    }

    #[test]
    fn empty_batch_is_wire_silent() {
        let (mut achan, _b) = duplex();
        let domain = ComparisonDomain::symmetric(5);
        let out = compare_batch_alice(
            Comparator::Ideal,
            &mut achan,
            alice_keypair(),
            &[],
            CmpOp::Lt,
            &domain,
            false,
            &ctx(1),
        )
        .unwrap();
        assert!(out.is_empty());
        assert_eq!(achan.metrics().total_rounds(), 0);
    }

    #[test]
    fn batch_share_comparison_matches_plain() {
        let domain = ComparisonDomain::symmetric(100);
        // dists: alice-held u, bob-held v; dist_i = u_i - v_i.
        let us = [(50i64, 20i64), (10, 9), (7, 7)];
        let vs = [(43i64, 8i64), (2, 0), (0, 1)];
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            share_less_than_batch_alice(
                Comparator::Ideal,
                &mut achan,
                alice_keypair(),
                &us,
                &domain,
                false,
                &ctx(2),
            )
            .unwrap()
        });
        let bob_view = share_less_than_batch_bob(
            Comparator::Ideal,
            &mut bchan,
            &alice_keypair().public,
            &vs,
            &domain,
            false,
            &ctx(3),
        )
        .unwrap();
        let alice_view = alice.join().unwrap();
        assert_eq!(alice_view, bob_view);
        // dist_a=7 vs dist_b=12 → true; 8 vs 9 → true; 7 vs 6 → false.
        assert_eq!(alice_view, vec![true, true, false]);
    }

    #[test]
    #[should_panic(expected = "empty comparison domain")]
    fn inverted_domain_panics() {
        let _ = ComparisonDomain::new(3, 2);
    }

    #[test]
    fn domain_n0_has_leq_headroom() {
        assert_eq!(ComparisonDomain::new(1, 1).n0(), 2);
        assert_eq!(ComparisonDomain::symmetric(5).n0(), 12);
    }
}
