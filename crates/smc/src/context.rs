//! Keyed randomness substreams — the [`ProtocolContext`].
//!
//! The protocol layers used to thread one sequential `&mut StdRng` through
//! every draw site. That made the *position* of every draw depend on every
//! draw before it: value-dependent sampling (DGK mask rejection loops,
//! Paillier nonce generation, Yao prime search) shifted the stream, so two
//! executions that perform the same logical work in a different *order* —
//! a batched and an unbatched neighborhood query, say — diverged in every
//! subsequent random value. The round-batching pipeline had to reproduce
//! draw order exactly, and one case (batched HDP + DGK) structurally could
//! not (the old DESIGN.md §7 "known gap").
//!
//! A [`ProtocolContext`] replaces the threaded stream with *keyed
//! derivation*, the pattern production MPC systems use (cf. IPA's
//! `ProtocolContext`/`RecordId`): every draw site derives its generator
//! from three independent inputs —
//!
//! 1. the **session seed** (one per party, from
//!    `Participant::seed`/`::rng`),
//! 2. a **step path** built by [`ProtocolContext::narrow`] (a label per
//!    protocol step, e.g. `"hdp"` → `"mask"`) and
//!    [`ProtocolContext::at`] (an index per loop instance, e.g. the
//!    query counter), and
//! 3. a **record index** ([`ProtocolContext::rng_for`]).
//!
//! `ctx.narrow("hdp.mul").rng_for(record)` therefore yields the same
//! stream no matter when, in what order, or on which thread it is drawn.
//! Batched and unbatched executions produce byte-identical randomness *by
//! construction*, and independent records can be evaluated out of order or
//! in parallel (see [`crate::parallel`]).
//!
//! Derivation is a SplitMix64-style hash chain over the existing RNG
//! machinery — no new dependencies, and the leaf generator is still the
//! workspace [`StdRng`]. The identity
//! `ctx.rng_for(i) ≡ ctx.at(i).rng()` holds by definition, so a batch
//! entry point keying items by index is interchangeable with a sequential
//! caller scoping each call with [`ProtocolContext::at`].
//!
//! Collision caveat: keys and leaf seeds are 64-bit (the width
//! [`StdRng::seed_from_u64`] accepts, and the width every session seed in
//! this workspace already had), so two distinct derivation paths alias
//! with probability ≈ `k²/2⁶⁵` over `k` leaf streams — negligible for any
//! realistic session (billions of records before it is likelier than a
//! hardware fault), but *not* zero, and the mixer is not a cryptographic
//! PRF. The workspace's security arguments treat RNG quality as an
//! orthogonal, swappable concern (see the `rand` shim docs); a deployment
//! wanting adversarial-collision resistance swaps the leaf derivation for
//! a keyed PRF with a ≥ 128-bit state in this one module.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Version tag of the randomness discipline, stamped into benchmark
/// artifacts so a recorded run names the derivation scheme it used.
pub const RANDOMNESS_DISCIPLINE: &str = "keyed-v1";

/// Index of one record (comparison, candidate point, ciphertext group)
/// within a protocol step. Plain `u64` — steps key their items by position
/// in the candidate set, which both framings of a batched protocol agree
/// on by construction.
pub type RecordId = u64;

/// SplitMix64 finalizer: a cheap 64-bit permutation with full avalanche,
/// the same mixer [`StdRng::seed_from_u64`] expands seeds with.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a step label; labels are short, this is a handful of cycles.
#[inline]
fn hash_label(label: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in label.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// Domain-separation tags so a `narrow("x")` can never collide with an
// `at(i)` or a leaf `rng()` derivation.
const TAG_NARROW: u64 = 0x9E37_79B9_7F4A_7C15;
const TAG_AT: u64 = 0xC2B2_AE3D_27D4_EB4F;
const TAG_LEAF: u64 = 0x1656_67B1_9E37_79F9;

/// A derivation point in the session's randomness tree: the session seed
/// plus the accumulated hash of every [`narrow`](Self::narrow) /
/// [`at`](Self::at) step taken from the root. Cloning or re-deriving the
/// same path always yields the same streams; distinct paths yield
/// independent streams up to 64-bit hash collisions (see the module docs'
/// collision caveat).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolContext {
    seed: u64,
    path: u64,
}

impl ProtocolContext {
    /// Root context of a session, from the party's session seed.
    pub fn new(seed: u64) -> Self {
        ProtocolContext { seed, path: 0 }
    }

    /// Root context derived from an existing generator (one `next_u64`
    /// draw becomes the session seed). This is how `Participant::rng`
    /// bridges the legacy `StdRng`-valued API onto keyed derivation.
    pub fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ProtocolContext::new(rng.next_u64())
    }

    /// Child context for a named protocol step (`"hdp"`, `"mask"`,
    /// `"cmp"`, …). Sibling steps get independent stream families.
    #[must_use]
    pub fn narrow(&self, step: &str) -> Self {
        ProtocolContext {
            seed: self.seed,
            path: mix(self.path ^ TAG_NARROW ^ hash_label(step)),
        }
    }

    /// Child context for one indexed instance of this step (a loop
    /// iteration: query counter, quickselect level, peer id). The identity
    /// `ctx.rng_for(i) == ctx.at(i).rng()` makes indexed children
    /// interchangeable with per-record leaf streams.
    #[must_use]
    pub fn at(&self, index: u64) -> Self {
        ProtocolContext {
            seed: self.seed,
            path: mix(self.path ^ TAG_AT ^ mix(index ^ TAG_AT)),
        }
    }

    /// This step's own generator (for steps that draw once per instance,
    /// like a permutation shuffle). Domain-separated from the `rng_for`
    /// record streams, so it does not alias any record index.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed ^ mix(self.path ^ TAG_LEAF)))
    }

    /// The deterministic generator for `record` under this step —
    /// independent of evaluation order and of every other record's stream.
    pub fn rng_for(&self, record: RecordId) -> StdRng {
        self.at(record).rng()
    }

    /// Re-base this derivation point onto a different session seed while
    /// keeping the accumulated step path. The path component accumulates
    /// independently of the seed, so two parties that walked the same
    /// `narrow`/`at` steps hold identical paths; rekeying both onto a
    /// *shared* seed (e.g. the sharing backend's dealer seed, combined
    /// from one contribution per party) yields the same streams on both
    /// sides — which is exactly what correlated-randomness generation
    /// needs, without threading a second context through every driver.
    #[must_use]
    pub fn rekey(&self, seed: u64) -> Self {
        ProtocolContext {
            seed,
            path: self.path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draws(mut r: StdRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| r.next_u64()).collect()
    }

    #[test]
    fn same_path_same_stream() {
        let a = ProtocolContext::new(7).narrow("hdp").at(3).rng_for(5);
        let b = ProtocolContext::new(7).narrow("hdp").at(3).rng_for(5);
        assert_eq!(draws(a, 32), draws(b, 32));
    }

    #[test]
    fn rng_for_is_at_then_rng() {
        let ctx = ProtocolContext::new(99).narrow("mul");
        assert_eq!(draws(ctx.rng_for(4), 16), draws(ctx.at(4).rng(), 16));
    }

    #[test]
    fn order_of_derivation_is_irrelevant() {
        // Deriving record 9 before record 2 (or never deriving 2 at all)
        // must not change record 2's stream — the whole point.
        let ctx = ProtocolContext::new(1).narrow("cmp");
        let _ = draws(ctx.rng_for(9), 100);
        let after = draws(ctx.rng_for(2), 16);
        let fresh = draws(ProtocolContext::new(1).narrow("cmp").rng_for(2), 16);
        assert_eq!(after, fresh);
    }

    #[test]
    fn siblings_diverge() {
        let root = ProtocolContext::new(42);
        let a = draws(root.narrow("mask").rng_for(0), 64);
        let b = draws(root.narrow("mul").rng_for(0), 64);
        let c = draws(root.narrow("mask").rng_for(1), 64);
        let d = draws(root.narrow("mask").at(1).rng_for(0), 64);
        let e = draws(root.narrow("mask").rng(), 64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(c, d, "at() and rng_for() nest, not alias");
        assert_ne!(a, e, "step-own stream is not record 0");
        assert_eq!(a.iter().filter(|&&v| b.contains(&v)).count(), 0);
    }

    #[test]
    fn seeds_separate_sessions() {
        let a = draws(ProtocolContext::new(1).narrow("x").rng_for(0), 64);
        let b = draws(ProtocolContext::new(2).narrow("x").rng_for(0), 64);
        assert_ne!(a, b);
    }

    #[test]
    fn from_rng_consumes_one_draw() {
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        let ctx = ProtocolContext::from_rng(&mut r1);
        assert_eq!(ctx, ProtocolContext::new(r2.next_u64()));
    }

    #[test]
    fn rekey_keeps_path_swaps_seed() {
        // Two parties with different session seeds but the same protocol
        // position converge once rekeyed onto a shared dealer seed.
        let alice = ProtocolContext::new(1).narrow("mul").at(3);
        let bob = ProtocolContext::new(2).narrow("mul").at(3);
        assert_ne!(draws(alice.rng_for(0), 16), draws(bob.rng_for(0), 16));
        assert_eq!(
            draws(alice.rekey(7).rng_for(0), 16),
            draws(bob.rekey(7).rng_for(0), 16)
        );
        assert_ne!(
            draws(alice.rekey(7).rng_for(0), 16),
            draws(alice.rng_for(0), 16)
        );
    }

    #[test]
    fn leaf_rngs_sample_sanely() {
        // Spot-check the derived generators feed the sampling layer.
        let ctx = ProtocolContext::new(1234).narrow("sanity");
        let mut buckets = [0usize; 8];
        for i in 0..4000u64 {
            let mut r = ctx.rng_for(i);
            buckets[r.random_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((350..650).contains(&b), "{buckets:?}");
        }
    }
}
