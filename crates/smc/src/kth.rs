//! Secure k-th order statistic over secret-shared distances (§5).
//!
//! After the dot-product phase of the enhanced protocol, Alice holds
//! `u_i = Dist²(A, B_i) + v_i` and Bob holds `v_i`. Neither party knows any
//! distance, but together they can compare two shared distances with one
//! secure comparison (`u_a - u_b` vs `v_a - v_b`). The paper proposes two
//! selection algorithms over this comparison oracle and we implement both:
//!
//! * [`SelectionMethod::RepeatedMin`] — scan for the minimum, delete it,
//!   repeat `k` times: `O(kn)` comparisons, best when `k` is small (the
//!   common case, since `k ≤ MinPts`);
//! * [`SelectionMethod::QuickSelect`] — quickselect on the index set with a
//!   deterministic pivot (both parties must take identical control paths
//!   without extra coordination): expected `O(n)` comparisons, `O(n²)`
//!   worst case, better for large `k` — exactly the trade-off §5 discusses.
//!
//! Control flow is driven purely by comparison outcomes, which Algorithm 1
//! reveals to both parties anyway, so both sides replay the identical
//! decision sequence and stay in lockstep with zero additional messages.

use crate::backend::SmcBackend;
use crate::compare::{
    share_less_than_alice, share_less_than_batch_alice, share_less_than_batch_bob,
    share_less_than_bob, Comparator, ComparisonDomain,
};
use crate::context::ProtocolContext;
use crate::error::SmcError;
use crate::leakage::Party;
use crate::sharing::SharingLedger;
use ppds_observe::trace;
use ppds_paillier::{Keypair, PublicKey};
use ppds_transport::Channel;

/// Which of the paper's two k-th-smallest algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMethod {
    /// `O(kn)` repeated minimum scan.
    #[default]
    RepeatedMin,
    /// Expected `O(n)` quickselect with deterministic middle pivot.
    QuickSelect,
}

/// Result of a selection: which element ranked k-th, and how many secure
/// comparisons it took (the unit experiment E8 counts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionOutcome {
    /// Index (into the original share vector) of the k-th smallest distance.
    pub index: usize,
    /// Number of secure comparisons executed.
    pub comparisons: usize,
}

/// Backend-dispatched selection: the session path. Runs the same engine as
/// the role-named entry points below but reaches every share comparison
/// through [`SmcBackend`], so one call site serves both the Paillier and
/// the sharing substrate. With a [`crate::backend::PaillierBackend`] the
/// wire transcript is byte-identical to the matching
/// [`kth_smallest_alice`] / [`kth_smallest_bob`] call. `role` is the
/// comparison role ([`Party::Alice`] holds the compare keypair);
/// `batched` selects the round-batched partition framing.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn kth_smallest_with<C: Channel, B: SmcBackend>(
    method: SelectionMethod,
    backend: &B,
    chan: &mut C,
    role: Party,
    shares: &[i64],
    k: usize,
    domain: &ComparisonDomain,
    batched: bool,
    ctx: &ProtocolContext,
    acct: &mut SharingLedger,
) -> Result<SelectionOutcome, SmcError> {
    let span = trace::span("kth", || chan.metrics());
    let mut less_many = |pairs: &[(usize, usize)], chan: &mut C, scope: &ProtocolContext| {
        if let [(a, b)] = pairs {
            // Single-pair calls keep the unbatched wire format byte-exact;
            // `scope` is already record-scoped by the engine.
            return backend
                .share_less_than(chan, role, (shares[*a], shares[*b]), domain, scope, acct)
                .map(|r| vec![r]);
        }
        let share_pairs: Vec<(i64, i64)> =
            pairs.iter().map(|&(a, b)| (shares[a], shares[b])).collect();
        backend.share_less_than_batch(chan, role, &share_pairs, domain, scope, acct)
    };
    let out = kth_engine(shares.len(), k, method, batched, chan, ctx, &mut less_many)?;
    span.end(|| chan.metrics());
    Ok(out)
}

/// Alice's side: her shares are `u_i`; returns the k-th smallest (1-based).
/// `ctx` is the selection step's context; the engine scopes every
/// comparison by its (level, pair) position, so batched and unbatched
/// executions draw identical streams.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn kth_smallest_alice<C: Channel>(
    method: SelectionMethod,
    comparator: Comparator,
    chan: &mut C,
    keypair: &Keypair,
    shares: &[i64],
    k: usize,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<SelectionOutcome, SmcError> {
    kth_alice_impl(
        method, comparator, chan, keypair, shares, k, domain, packed, ctx, false,
    )
}

/// [`kth_smallest_alice`] with round batching: quickselect partitions run
/// all pivot comparisons as one [`crate::compare::compare_batch_alice`]
/// call (3 wire rounds per partition level instead of 3 per comparison).
/// Repeated-minimum scans are inherently sequential — each comparison's
/// operand depends on the previous outcome — so they execute exactly as in
/// the unbatched entry point. Outcomes (index and comparison count) are
/// identical either way: the same comparisons run with the same operands,
/// only the framing changes.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn kth_smallest_alice_batched<C: Channel>(
    method: SelectionMethod,
    comparator: Comparator,
    chan: &mut C,
    keypair: &Keypair,
    shares: &[i64],
    k: usize,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<SelectionOutcome, SmcError> {
    kth_alice_impl(
        method, comparator, chan, keypair, shares, k, domain, packed, ctx, true,
    )
}

/// Bob's side: his shares are `v_i`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn kth_smallest_bob<C: Channel>(
    method: SelectionMethod,
    comparator: Comparator,
    chan: &mut C,
    alice_pk: &PublicKey,
    shares: &[i64],
    k: usize,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<SelectionOutcome, SmcError> {
    kth_bob_impl(
        method, comparator, chan, alice_pk, shares, k, domain, packed, ctx, false,
    )
}

/// Round-batched Bob side; see [`kth_smallest_alice_batched`].
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn kth_smallest_bob_batched<C: Channel>(
    method: SelectionMethod,
    comparator: Comparator,
    chan: &mut C,
    alice_pk: &PublicKey,
    shares: &[i64],
    k: usize,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
) -> Result<SelectionOutcome, SmcError> {
    kth_bob_impl(
        method, comparator, chan, alice_pk, shares, k, domain, packed, ctx, true,
    )
}

#[allow(clippy::too_many_arguments)]
fn kth_alice_impl<C: Channel>(
    method: SelectionMethod,
    comparator: Comparator,
    chan: &mut C,
    keypair: &Keypair,
    shares: &[i64],
    k: usize,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
    batched: bool,
) -> Result<SelectionOutcome, SmcError> {
    let span = trace::span("kth", || chan.metrics());
    let mut less_many = |pairs: &[(usize, usize)], chan: &mut C, scope: &ProtocolContext| {
        if let [(a, b)] = pairs {
            // Single-pair calls keep the unbatched wire format byte-exact;
            // `scope` is already record-scoped by the engine.
            return share_less_than_alice(
                comparator, chan, keypair, shares[*a], shares[*b], domain, packed, scope,
            )
            .map(|r| vec![r]);
        }
        let share_pairs: Vec<(i64, i64)> =
            pairs.iter().map(|&(a, b)| (shares[a], shares[b])).collect();
        share_less_than_batch_alice(
            comparator,
            chan,
            keypair,
            &share_pairs,
            domain,
            packed,
            scope,
        )
    };
    let out = kth_engine(shares.len(), k, method, batched, chan, ctx, &mut less_many)?;
    span.end(|| chan.metrics());
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn kth_bob_impl<C: Channel>(
    method: SelectionMethod,
    comparator: Comparator,
    chan: &mut C,
    alice_pk: &PublicKey,
    shares: &[i64],
    k: usize,
    domain: &ComparisonDomain,
    packed: bool,
    ctx: &ProtocolContext,
    batched: bool,
) -> Result<SelectionOutcome, SmcError> {
    let span = trace::span("kth", || chan.metrics());
    let mut less_many = |pairs: &[(usize, usize)], chan: &mut C, scope: &ProtocolContext| {
        if let [(a, b)] = pairs {
            return share_less_than_bob(
                comparator, chan, alice_pk, shares[*a], shares[*b], domain, packed, scope,
            )
            .map(|r| vec![r]);
        }
        let share_pairs: Vec<(i64, i64)> =
            pairs.iter().map(|&(a, b)| (shares[a], shares[b])).collect();
        share_less_than_batch_bob(
            comparator,
            chan,
            alice_pk,
            &share_pairs,
            domain,
            packed,
            scope,
        )
    };
    let out = kth_engine(shares.len(), k, method, batched, chan, ctx, &mut less_many)?;
    span.end(|| chan.metrics());
    Ok(out)
}

/// Role-neutral engine: identical deterministic control flow on both sides,
/// parameterized by the party-specific comparison call. `less_many` runs a
/// slice of independent share comparisons and returns one outcome per pair;
/// sequential call sites receive a record-scoped context per single pair,
/// batch call sites the level context (items key themselves by index).
fn kth_engine<C, F>(
    n: usize,
    k: usize,
    method: SelectionMethod,
    batched: bool,
    chan: &mut C,
    ctx: &ProtocolContext,
    less_many: &mut F,
) -> Result<SelectionOutcome, SmcError>
where
    C: Channel,
    F: FnMut(&[(usize, usize)], &mut C, &ProtocolContext) -> Result<Vec<bool>, SmcError>,
{
    assert!(n > 0, "cannot select from an empty share vector");
    assert!(
        (1..=n).contains(&k),
        "k = {k} out of range for {n} elements"
    );
    match method {
        SelectionMethod::RepeatedMin => repeated_min(n, k, chan, ctx, less_many),
        SelectionMethod::QuickSelect => quick_select(n, k, batched, chan, ctx, less_many),
    }
}

fn repeated_min<C, F>(
    n: usize,
    k: usize,
    chan: &mut C,
    ctx: &ProtocolContext,
    less_many: &mut F,
) -> Result<SelectionOutcome, SmcError>
where
    C: Channel,
    F: FnMut(&[(usize, usize)], &mut C, &ProtocolContext) -> Result<Vec<bool>, SmcError>,
{
    let mut active: Vec<usize> = (0..n).collect();
    let mut comparisons = 0;
    for round in 0..k {
        let mut min_pos = 0;
        for pos in 1..active.len() {
            // Inherently sequential control flow, but each comparison's
            // randomness is keyed by its ordinal, not by stream position.
            let scope = ctx.at(comparisons as u64);
            comparisons += 1;
            if less_many(&[(active[pos], active[min_pos])], chan, &scope)?[0] {
                min_pos = pos;
            }
        }
        if round == k - 1 {
            return Ok(SelectionOutcome {
                index: active[min_pos],
                comparisons,
            });
        }
        active.swap_remove(min_pos);
    }
    unreachable!("loop returns on round k-1")
}

fn quick_select<C, F>(
    n: usize,
    k: usize,
    batched: bool,
    chan: &mut C,
    ctx: &ProtocolContext,
    less_many: &mut F,
) -> Result<SelectionOutcome, SmcError>
where
    C: Channel,
    F: FnMut(&[(usize, usize)], &mut C, &ProtocolContext) -> Result<Vec<bool>, SmcError>,
{
    let mut items: Vec<usize> = (0..n).collect();
    let mut k = k; // 1-based rank within `items`
    let mut comparisons = 0;
    let mut level = 0u64;
    loop {
        if items.len() == 1 {
            return Ok(SelectionOutcome {
                index: items[0],
                comparisons,
            });
        }
        // Deterministic pivot: both parties pick the same position without
        // exchanging anything.
        let pivot = items[items.len() / 2];
        let others: Vec<usize> = items.iter().copied().filter(|&i| i != pivot).collect();
        // Every pivot comparison of one partition level is independent, so
        // a batched run ships them as one frame set. Comparison `i` of
        // level `ℓ` draws from `ctx.at(ℓ).at(i)` in both framings.
        let level_ctx = ctx.at(level);
        level += 1;
        let outcomes: Vec<bool> = if batched && others.len() > 1 {
            let pairs: Vec<(usize, usize)> = others.iter().map(|&i| (i, pivot)).collect();
            less_many(&pairs, chan, &level_ctx)?
        } else {
            let mut out = Vec::with_capacity(others.len());
            for (i, &idx) in others.iter().enumerate() {
                out.push(less_many(&[(idx, pivot)], chan, &level_ctx.at(i as u64))?[0]);
            }
            out
        };
        if outcomes.len() != others.len() {
            return Err(SmcError::protocol("partition outcome arity mismatch"));
        }
        comparisons += others.len();
        let mut smaller = Vec::new();
        let mut not_smaller = Vec::new();
        for (&idx, &is_less) in others.iter().zip(&outcomes) {
            if is_less {
                smaller.push(idx);
            } else {
                not_smaller.push(idx);
            }
        }
        if k <= smaller.len() {
            items = smaller;
        } else if k == smaller.len() + 1 {
            return Ok(SelectionOutcome {
                index: pivot,
                comparisons,
            });
        } else {
            k -= smaller.len() + 1;
            items = not_smaller;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{alice_keypair, ctx, rng};
    use ppds_transport::duplex;
    use rand::Rng;

    /// Splits `dists` into shares (u_i = d_i + v_i for random v_i), runs the
    /// selection on two threads, and returns the outcome both sides agree on.
    fn run(
        dists: &[i64],
        k: usize,
        method: SelectionMethod,
        comparator: Comparator,
        seed: u64,
    ) -> SelectionOutcome {
        let mut r = rng(seed);
        let vs: Vec<i64> = dists.iter().map(|_| r.random_range(-50..=50)).collect();
        let us: Vec<i64> = dists.iter().zip(&vs).map(|(d, v)| d + v).collect();
        let bound = 2 * (dists.iter().map(|d| d.abs()).max().unwrap_or(0) + 50);
        let domain = ComparisonDomain::symmetric(bound);

        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            kth_smallest_alice(
                method,
                comparator,
                &mut achan,
                alice_keypair(),
                &us,
                k,
                &domain,
                false,
                &ctx(seed + 1),
            )
            .unwrap()
        });
        let bob = kth_smallest_bob(
            method,
            comparator,
            &mut bchan,
            &alice_keypair().public,
            &vs,
            k,
            &domain,
            false,
            &ctx(seed + 2),
        )
        .unwrap();
        let alice = alice.join().unwrap();
        assert_eq!(alice, bob, "both parties must agree");
        alice
    }

    /// The set of indices whose value ties for the k-th smallest (selection
    /// may return any of them).
    fn kth_tie_set(dists: &[i64], k: usize) -> Vec<usize> {
        let mut sorted: Vec<i64> = dists.to_vec();
        sorted.sort();
        let kth_value = sorted[k - 1];
        (0..dists.len())
            .filter(|&i| dists[i] == kth_value)
            .collect()
    }

    #[test]
    fn selects_correct_index_all_ranks() {
        let dists = [9i64, 2, 14, 5, 0, 7];
        for method in [SelectionMethod::RepeatedMin, SelectionMethod::QuickSelect] {
            for k in 1..=dists.len() {
                let outcome = run(&dists, k, method, Comparator::Ideal, 100 + k as u64);
                let valid = kth_tie_set(&dists, k);
                assert!(
                    valid.contains(&outcome.index),
                    "{method:?} k={k}: got {} want one of {valid:?}",
                    outcome.index
                );
            }
        }
    }

    #[test]
    fn handles_ties() {
        let dists = [5i64, 5, 5, 1, 5];
        for method in [SelectionMethod::RepeatedMin, SelectionMethod::QuickSelect] {
            let outcome = run(&dists, 1, method, Comparator::Ideal, 7);
            assert_eq!(outcome.index, 3, "{method:?}: unique minimum");
            let outcome = run(&dists, 3, method, Comparator::Ideal, 8);
            assert!(dists[outcome.index] == 5, "{method:?}: tie rank");
        }
    }

    #[test]
    fn single_element() {
        for method in [SelectionMethod::RepeatedMin, SelectionMethod::QuickSelect] {
            let outcome = run(&[42], 1, method, Comparator::Ideal, 9);
            assert_eq!(outcome.index, 0);
            assert_eq!(outcome.comparisons, 0, "{method:?}");
        }
    }

    #[test]
    fn repeated_min_comparison_count_is_exact() {
        // Round t scans (n - t) active elements => (n - t - 1) comparisons.
        let dists = [3i64, 1, 4, 1, 5, 9, 2, 6];
        let n = dists.len();
        for k in 1..=4 {
            let outcome = run(
                &dists,
                k,
                SelectionMethod::RepeatedMin,
                Comparator::Ideal,
                20,
            );
            let expect: usize = (0..k).map(|t| n - t - 1).sum();
            assert_eq!(outcome.comparisons, expect, "k={k}");
        }
    }

    #[test]
    fn quickselect_uses_fewer_comparisons_for_large_k() {
        let mut r = rng(33);
        let dists: Vec<i64> = (0..40).map(|_| r.random_range(0..1000)).collect();
        let k = 20;
        let rm = run(
            &dists,
            k,
            SelectionMethod::RepeatedMin,
            Comparator::Ideal,
            40,
        );
        let qs = run(
            &dists,
            k,
            SelectionMethod::QuickSelect,
            Comparator::Ideal,
            41,
        );
        assert!(
            qs.comparisons < rm.comparisons,
            "quickselect {} vs repeated-min {}",
            qs.comparisons,
            rm.comparisons
        );
    }

    /// Batched run returning the outcome and Alice's channel metrics.
    fn run_batched(
        dists: &[i64],
        k: usize,
        method: SelectionMethod,
        seed: u64,
    ) -> (SelectionOutcome, ppds_transport::MetricsSnapshot) {
        let mut r = rng(seed);
        let vs: Vec<i64> = dists.iter().map(|_| r.random_range(-50..=50)).collect();
        let us: Vec<i64> = dists.iter().zip(&vs).map(|(d, v)| d + v).collect();
        let bound = 2 * (dists.iter().map(|d| d.abs()).max().unwrap_or(0) + 50);
        let domain = ComparisonDomain::symmetric(bound);

        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            let out = kth_smallest_alice_batched(
                method,
                Comparator::Ideal,
                &mut achan,
                alice_keypair(),
                &us,
                k,
                &domain,
                false,
                &ctx(seed + 1),
            )
            .unwrap();
            (out, achan.metrics())
        });
        let bob = kth_smallest_bob_batched(
            method,
            Comparator::Ideal,
            &mut bchan,
            &alice_keypair().public,
            &vs,
            k,
            &domain,
            false,
            &ctx(seed + 2),
        )
        .unwrap();
        let (alice, metrics) = alice.join().unwrap();
        assert_eq!(alice, bob, "both parties must agree");
        (alice, metrics)
    }

    #[test]
    fn batched_selection_matches_sequential_outcome() {
        let dists = [9i64, 2, 14, 5, 0, 7, 7, 3, 11, 1];
        for method in [SelectionMethod::RepeatedMin, SelectionMethod::QuickSelect] {
            for k in 1..=dists.len() {
                let seq = run(&dists, k, method, Comparator::Ideal, 300 + k as u64);
                let (bat, _) = run_batched(&dists, k, method, 300 + k as u64);
                assert_eq!(seq, bat, "{method:?} k={k}");
            }
        }
    }

    #[test]
    fn batched_quickselect_collapses_partition_rounds() {
        let mut r = rng(44);
        let dists: Vec<i64> = (0..32).map(|_| r.random_range(0..1000)).collect();
        let seq = run(
            &dists,
            16,
            SelectionMethod::QuickSelect,
            Comparator::Ideal,
            45,
        );
        let (bat, metrics) = run_batched(&dists, 16, SelectionMethod::QuickSelect, 45);
        assert_eq!(seq.index, bat.index);
        assert_eq!(seq.comparisons, bat.comparisons);
        // Every partition level is 3 rounds; the sequential run pays 3 per
        // comparison. Expected levels ~log n, comparisons ~2n.
        assert!(
            metrics.total_rounds() < 3 * bat.comparisons as u64 / 2,
            "rounds {} should be far below 3x{} comparisons",
            metrics.total_rounds(),
            bat.comparisons
        );
    }

    #[test]
    fn yao_backend_agrees_with_ideal_on_small_instance() {
        let dists = [4i64, 1, 3, 2];
        for k in 1..=4 {
            let ideal = run(
                &dists,
                k,
                SelectionMethod::RepeatedMin,
                Comparator::Ideal,
                60,
            );
            let yao = run(&dists, k, SelectionMethod::RepeatedMin, Comparator::Yao, 61);
            assert_eq!(ideal.index, yao.index, "k={k}");
        }
    }

    #[test]
    fn backend_dispatch_agrees_across_substrates() {
        use crate::backend::{PaillierBackend, SharingBackend, SmcBackend};
        use crate::leakage::Party;
        use crate::sharing::{DealerTape, SharingLedger};
        use ppds_bigint::BigUint;

        fn run_with<B: SmcBackend + Send + Sync>(
            alice_backend: &B,
            bob_backend: &B,
            dists: &[i64],
            k: usize,
            batched: bool,
            seed: u64,
        ) -> (SelectionOutcome, SharingLedger) {
            let mut r = rng(seed);
            let vs: Vec<i64> = dists.iter().map(|_| r.random_range(-50..=50)).collect();
            let us: Vec<i64> = dists.iter().zip(&vs).map(|(d, v)| d + v).collect();
            let bound = 2 * (dists.iter().map(|d| d.abs()).max().unwrap_or(0) + 50);
            let domain = ComparisonDomain::symmetric(bound);
            let (mut achan, mut bchan) = duplex();
            let out = std::thread::scope(|s| {
                let alice = s.spawn(|| {
                    let mut acct = SharingLedger::default();
                    let out = kth_smallest_with(
                        SelectionMethod::QuickSelect,
                        alice_backend,
                        &mut achan,
                        Party::Alice,
                        &us,
                        k,
                        &domain,
                        batched,
                        &ctx(seed + 1),
                        &mut acct,
                    )
                    .unwrap();
                    (out, acct)
                });
                let mut acct = SharingLedger::default();
                let bob = kth_smallest_with(
                    SelectionMethod::QuickSelect,
                    bob_backend,
                    &mut bchan,
                    Party::Bob,
                    &vs,
                    k,
                    &domain,
                    batched,
                    &ctx(seed + 2),
                    &mut acct,
                )
                .unwrap();
                let (aout, aacct) = alice.join().unwrap();
                assert_eq!(aout, bob);
                (aout, aacct)
            });
            out
        }

        let dists = [9i64, 2, 14, 5, 0, 7, 3, 11];
        let tape = DealerTape::from_seed(77);
        let mk_sharing = |batching| SharingBackend {
            tape,
            batching,
            dot_mask_bound: 1 << 20,
        };
        let mk_paillier = |batching| PaillierBackend {
            my_keypair: alice_keypair(),
            peer_pk: &alice_keypair().public,
            comparator: Comparator::Ideal,
            packed: false,
            batching,
            mul_packing: None,
            dot_packing: None,
            mul_mask_bound: BigUint::from_u64(1 << 20),
            dot_mask_bound: BigUint::from_u64(1 << 20),
        };
        for k in [1, 4, 8] {
            for batched in [false, true] {
                let (p, pacct) = run_with(
                    &mk_paillier(batched),
                    &mk_paillier(batched),
                    &dists,
                    k,
                    batched,
                    500 + k as u64,
                );
                let (sh, sacct) = run_with(
                    &mk_sharing(batched),
                    &mk_sharing(batched),
                    &dists,
                    k,
                    batched,
                    500 + k as u64,
                );
                assert_eq!(p.index, sh.index, "k={k} batched={batched}");
                assert_eq!(p.comparisons, sh.comparisons);
                // Paillier leaves the sharing ledger untouched; sharing
                // accounts one substitution per comparison.
                assert_eq!(pacct, SharingLedger::default());
                assert_eq!(sacct.compares as usize, sh.comparisons);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_panics() {
        let _ = run(
            &[1, 2],
            0,
            SelectionMethod::RepeatedMin,
            Comparator::Ideal,
            70,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_above_n_panics() {
        let _ = run(
            &[1, 2],
            3,
            SelectionMethod::QuickSelect,
            Comparator::Ideal,
            71,
        );
    }
}
