//! Error type shared by all SMC protocols.

use ppds_paillier::PaillierError;
use ppds_transport::TransportError;
use std::fmt;

/// Errors raised during a protocol execution.
#[derive(Debug)]
pub enum SmcError {
    /// Channel failure (peer gone, socket error, malformed frame).
    Transport(TransportError),
    /// Cryptographic failure (invalid ciphertext, out-of-range plaintext).
    Crypto(PaillierError),
    /// The peer sent something structurally valid but semantically wrong
    /// for the current protocol step.
    Protocol(String),
    /// A value fell outside the comparison domain the parties agreed on
    /// (would make Yao's protocol silently wrong, so it is an error).
    DomainViolation {
        /// The offending input.
        value: i64,
        /// Inclusive lower bound of the agreed domain.
        lo: i64,
        /// Inclusive upper bound of the agreed domain.
        hi: i64,
    },
}

impl SmcError {
    /// Convenience constructor for protocol violations.
    pub fn protocol(msg: impl Into<String>) -> Self {
        SmcError::Protocol(msg.into())
    }
}

impl fmt::Display for SmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmcError::Transport(e) => write!(f, "transport error: {e}"),
            SmcError::Crypto(e) => write!(f, "crypto error: {e}"),
            SmcError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            SmcError::DomainViolation { value, lo, hi } => {
                write!(
                    f,
                    "value {value} outside agreed comparison domain [{lo}, {hi}]"
                )
            }
        }
    }
}

impl std::error::Error for SmcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SmcError::Transport(e) => Some(e),
            SmcError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for SmcError {
    fn from(e: TransportError) -> Self {
        SmcError::Transport(e)
    }
}

impl From<PaillierError> for SmcError {
    fn from(e: PaillierError) -> Self {
        SmcError::Crypto(e)
    }
}
