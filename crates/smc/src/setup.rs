//! Session setup: public key exchange.
//!
//! Both DBSCAN protocols need both parties to hold keypairs (the
//! Multiplication Protocol's key holder varies by query direction, and
//! Yao's protocol always decrypts under the querying side's key), so a
//! session starts with a symmetric exchange of Paillier moduli.

use crate::error::SmcError;
use ppds_paillier::{Keypair, PublicKey};
use ppds_transport::Channel;

/// Sends our public key (just `n`; `g = n + 1` is the fixed convention).
pub fn send_public_key<C: Channel>(chan: &mut C, keypair: &Keypair) -> Result<(), SmcError> {
    chan.send(keypair.public.n())?;
    Ok(())
}

/// Receives and validates the peer's public key.
pub fn recv_public_key<C: Channel>(chan: &mut C) -> Result<PublicKey, SmcError> {
    let n = chan.recv()?;
    Ok(PublicKey::from_modulus(n)?)
}

/// Symmetric exchange: Alice sends first, then receives; Bob mirrors.
/// Returns the peer's public key.
pub fn exchange_keys_alice<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
) -> Result<PublicKey, SmcError> {
    send_public_key(chan, keypair)?;
    recv_public_key(chan)
}

/// Bob's half of [`exchange_keys_alice`].
pub fn exchange_keys_bob<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
) -> Result<PublicKey, SmcError> {
    let peer = recv_public_key(chan)?;
    send_public_key(chan, keypair)?;
    Ok(peer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{alice_keypair, bob_keypair, rng};
    use ppds_bigint::BigUint;
    use ppds_transport::duplex;

    #[test]
    fn key_exchange_roundtrip() {
        let (mut a_chan, mut b_chan) = duplex();
        let bob = std::thread::spawn(move || {
            let peer = exchange_keys_bob(&mut b_chan, bob_keypair()).unwrap();
            (peer, b_chan)
        });
        let alice_view_of_bob = exchange_keys_alice(&mut a_chan, alice_keypair()).unwrap();
        let (bob_view_of_alice, _chan) = bob.join().unwrap();
        assert_eq!(alice_view_of_bob.n(), bob_keypair().public.n());
        assert_eq!(bob_view_of_alice.n(), alice_keypair().public.n());
    }

    #[test]
    fn received_key_can_encrypt_for_peer() {
        let (mut a_chan, mut b_chan) = duplex();
        send_public_key(&mut a_chan, alice_keypair()).unwrap();
        let alice_pk = recv_public_key(&mut b_chan).unwrap();
        let mut r = rng(1);
        let c = alice_pk.encrypt(&BigUint::from_u64(321), &mut r).unwrap();
        assert_eq!(
            alice_keypair().private.decrypt(&c).unwrap(),
            BigUint::from_u64(321)
        );
    }

    #[test]
    fn garbage_modulus_rejected() {
        let (mut a_chan, mut b_chan) = duplex();
        a_chan.send(&BigUint::from_u64(4)).unwrap(); // even, tiny
        assert!(recv_public_key(&mut b_chan).is_err());
    }
}
