//! The pluggable SMC backend: one trait, two cryptographic substrates.
//!
//! Every protocol mode reaches its three SMC workhorses — secure
//! comparison / `share_less_than`, Beaver-style multiplication folds, and
//! the one-round `dot_many` — through [`SmcBackend`], selected per session
//! by `ProtocolConfig::backend` exactly like the Ideal/DGK/Yao comparator
//! choice:
//!
//! * [`PaillierBackend`] delegates byte-for-byte to the existing
//!   homomorphic implementations ([`crate::compare`],
//!   [`crate::multiplication`]), preserving every scoping convention the
//!   drivers used when they called those functions directly (masks from
//!   `ctx.narrow("mask").rng_for(record)`, multiplication scopes at
//!   `ctx.narrow("mul").at(record)`), so routing through the trait changes
//!   nothing observable.
//! * [`SharingBackend`] routes to [`crate::sharing`]: 8-byte ring elements
//!   instead of 512–2048-bit ciphertexts, with correlated randomness from
//!   the session's [`DealerTape`] and trust substitutions accounted in a
//!   [`SharingLedger`].
//!
//! This module never touches a Paillier ciphertext itself — it only
//! dispatches (a CI grep guard keeps it that way).

use crate::compare::{
    compare_alice, compare_batch_alice, compare_batch_bob, compare_bob, share_less_than_alice,
    share_less_than_batch_alice, share_less_than_batch_bob, share_less_than_bob, CmpOp, Comparator,
    ComparisonDomain,
};
use crate::context::{ProtocolContext, RecordId};
use crate::error::SmcError;
use crate::leakage::Party;
use crate::multiplication::{
    dot_many_keyholder, dot_many_peer, mul_batch_keyholder, mul_batch_peer, mul_batches_keyholder,
    mul_batches_peer, zero_sum_masks, ResponsePacking,
};
use crate::sharing::{
    sample_mask_i64, sharing_compare_alice, sharing_compare_batch_alice, sharing_compare_batch_bob,
    sharing_compare_bob, sharing_dot_querier, sharing_dot_responder, sharing_fold_keyholder_batch,
    sharing_fold_keyholder_one, sharing_fold_peer_batch, sharing_fold_peer_one,
    sharing_share_less_than_alice, sharing_share_less_than_batch_alice,
    sharing_share_less_than_batch_bob, sharing_share_less_than_bob, DealerTape, Fe, SharingLedger,
    MAX_SHARING_MASK,
};
use ppds_bigint::{BigInt, BigUint};
use ppds_paillier::{Keypair, PublicKey};
use ppds_transport::Channel;

/// Which cryptographic substrate a session's SMC workhorses run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The paper's homomorphic path: Paillier ciphertexts end to end.
    #[default]
    Paillier,
    /// Additive secret sharing over `Z_2^64` ([`crate::sharing`]).
    Sharing,
}

impl BackendKind {
    /// Stable wire tag for the Hello handshake.
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::Paillier => 0,
            BackendKind::Sharing => 1,
        }
    }

    /// Inverse of [`BackendKind::tag`].
    pub fn from_tag(tag: u8) -> Option<BackendKind> {
        match tag {
            0 => Some(BackendKind::Paillier),
            1 => Some(BackendKind::Sharing),
            _ => None,
        }
    }

    /// Human-readable name (benchmark rows, session metadata).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Paillier => "paillier",
            BackendKind::Sharing => "sharing",
        }
    }
}

/// The backend dispatch surface. `role` on the comparison methods is the
/// *comparison* role ([`Party::Alice`] holds the compare keypair on the
/// Paillier path; sharing ignores keys but keeps the same send/recv
/// ordering). The multiplication/dot methods encode their role in the
/// method name. `acct` collects the sharing backend's trust-substitution
/// ledger; the Paillier backend leaves it untouched, which is exactly the
/// audit claim that no sharing substitution occurred.
pub trait SmcBackend {
    /// Which substrate this backend runs on.
    fn kind(&self) -> BackendKind;

    /// One secure comparison; returns `alice_value OP bob_value`.
    #[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
    fn compare<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        value: i64,
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<bool, SmcError>;

    /// Round-batched comparisons (one verdict per element).
    #[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
    fn compare_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        values: &[i64],
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError>;

    /// Share comparison (§5): the party's `(share_of_a, share_of_b)` pair;
    /// both sides learn `dist_a < dist_b`.
    #[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
    fn share_less_than<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pair: (i64, i64),
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<bool, SmcError>;

    /// Round-batched share comparisons.
    #[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
    fn share_less_than_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pairs: &[(i64, i64)],
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError>;

    /// Querier (key-holding) side of the one-exchange dot product: learns
    /// `u_j = ⟨xs, y_j⟩ + v_j` per responder row.
    fn dot_many_querier<C: Channel>(
        &self,
        chan: &mut C,
        xs: &[i64],
        expected_rows: usize,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError>;

    /// Responder side of [`SmcBackend::dot_many_querier`]: supplies the
    /// rows, draws the masks `v_j` (its output shares) from
    /// `ctx.rng_for(j)`, and returns them.
    fn dot_many_responder<C: Channel>(
        &self,
        chan: &mut C,
        rows: &[Vec<i64>],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError>;

    /// Key-holding side of the multiplication fold: for each group `g`
    /// (scoped by `records[g]` under `ctx`), learns the exact inner
    /// product `⟨groups[g], peer_group[g]⟩` (the per-element masks of the
    /// Paillier path are zero-sum, so its folded sum is the same exact
    /// value).
    fn mul_fold_keyholder<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError>;

    /// Peer side of [`SmcBackend::mul_fold_keyholder`].
    fn mul_fold_peer<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<(), SmcError>;
}

fn bigints(values: &[i64]) -> Vec<BigInt> {
    values.iter().map(|&v| BigInt::from_i64(v)).collect()
}

fn to_i64(v: &BigInt, what: &str) -> Result<i64, SmcError> {
    v.to_i64()
        .ok_or_else(|| SmcError::protocol(format!("{what} overflows i64")))
}

/// The homomorphic substrate: every method delegates to the existing
/// Paillier implementation with the scoping conventions the drivers used
/// before the trait existed, so transcripts are byte-identical.
pub struct PaillierBackend<'a> {
    /// This party's keypair (used when it plays the key-holding role).
    pub my_keypair: &'a Keypair,
    /// The peer's public key (used when the peer holds the key).
    pub peer_pk: &'a PublicKey,
    /// Comparison backend (Yao / Ideal / DGK).
    pub comparator: Comparator,
    /// Plaintext-slot packing on comparison transcripts.
    pub packed: bool,
    /// Round-batched framing inside the fold methods.
    pub batching: bool,
    /// Packing layout for multiplication responses (dimension-dependent).
    pub mul_packing: Option<ResponsePacking>,
    /// Packing layout for dot-product responses (dimension-dependent).
    pub dot_packing: Option<ResponsePacking>,
    /// Mask bound for multiplication zero-sum masks.
    pub mul_mask_bound: BigUint,
    /// Mask bound for dot-product output masks.
    pub dot_mask_bound: BigUint,
}

impl SmcBackend for PaillierBackend<'_> {
    fn kind(&self) -> BackendKind {
        BackendKind::Paillier
    }

    fn compare<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        value: i64,
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<bool, SmcError> {
        match role {
            Party::Alice => compare_alice(
                self.comparator,
                chan,
                self.my_keypair,
                value,
                op,
                domain,
                self.packed,
                ctx,
            ),
            Party::Bob => compare_bob(
                self.comparator,
                chan,
                self.peer_pk,
                value,
                op,
                domain,
                self.packed,
                ctx,
            ),
        }
    }

    fn compare_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        values: &[i64],
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError> {
        match role {
            Party::Alice => compare_batch_alice(
                self.comparator,
                chan,
                self.my_keypair,
                values,
                op,
                domain,
                self.packed,
                ctx,
            ),
            Party::Bob => compare_batch_bob(
                self.comparator,
                chan,
                self.peer_pk,
                values,
                op,
                domain,
                self.packed,
                ctx,
            ),
        }
    }

    fn share_less_than<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pair: (i64, i64),
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<bool, SmcError> {
        match role {
            Party::Alice => share_less_than_alice(
                self.comparator,
                chan,
                self.my_keypair,
                pair.0,
                pair.1,
                domain,
                self.packed,
                ctx,
            ),
            Party::Bob => share_less_than_bob(
                self.comparator,
                chan,
                self.peer_pk,
                pair.0,
                pair.1,
                domain,
                self.packed,
                ctx,
            ),
        }
    }

    fn share_less_than_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pairs: &[(i64, i64)],
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError> {
        match role {
            Party::Alice => share_less_than_batch_alice(
                self.comparator,
                chan,
                self.my_keypair,
                pairs,
                domain,
                self.packed,
                ctx,
            ),
            Party::Bob => share_less_than_batch_bob(
                self.comparator,
                chan,
                self.peer_pk,
                pairs,
                domain,
                self.packed,
                ctx,
            ),
        }
    }

    fn dot_many_querier<C: Channel>(
        &self,
        chan: &mut C,
        xs: &[i64],
        expected_rows: usize,
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        let raw = dot_many_keyholder(
            chan,
            self.my_keypair,
            &bigints(xs),
            expected_rows,
            self.dot_packing.as_ref(),
            ctx,
        )?;
        raw.iter().map(|v| to_i64(v, "distance share")).collect()
    }

    fn dot_many_responder<C: Channel>(
        &self,
        chan: &mut C,
        rows: &[Vec<i64>],
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        let rows_big: Vec<Vec<BigInt>> = rows.iter().map(|r| bigints(r)).collect();
        let masks = dot_many_peer(
            chan,
            self.peer_pk,
            &rows_big,
            &self.dot_mask_bound,
            self.dot_packing.as_ref(),
            ctx,
        )?;
        masks.iter().map(|v| to_i64(v, "distance share")).collect()
    }

    fn mul_fold_keyholder<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        assert_eq!(groups.len(), records.len(), "one record scope per group");
        let mul_ctx = ctx.narrow("mul");
        let fold = |ws: &[BigInt]| -> Result<i64, SmcError> {
            let sum = ws.iter().fold(BigInt::zero(), |acc, w| &acc + w);
            to_i64(&sum, "folded product")
        };
        if self.batching {
            let xs_groups: Vec<Vec<BigInt>> = groups.iter().map(|g| bigints(g)).collect();
            let all = mul_batches_keyholder(
                chan,
                self.my_keypair,
                &xs_groups,
                |g| mul_ctx.at(records[g]),
                self.mul_packing.as_ref(),
            )?;
            all.iter().map(|ws| fold(ws)).collect()
        } else {
            let mut out = Vec::with_capacity(groups.len());
            for (g, xs) in groups.iter().enumerate() {
                let ws = mul_batch_keyholder(
                    chan,
                    self.my_keypair,
                    &bigints(xs),
                    self.mul_packing.as_ref(),
                    &mul_ctx.at(records[g]),
                )?;
                out.push(fold(&ws)?);
            }
            Ok(out)
        }
    }

    fn mul_fold_peer<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        _acct: &mut SharingLedger,
    ) -> Result<(), SmcError> {
        assert_eq!(groups.len(), records.len(), "one record scope per group");
        let mask_ctx = ctx.narrow("mask");
        let mul_ctx = ctx.narrow("mul");
        if self.batching {
            let ys_groups: Vec<Vec<BigInt>> = groups.iter().map(|g| bigints(g)).collect();
            mul_batches_peer(
                chan,
                self.peer_pk,
                &ys_groups,
                |g| {
                    zero_sum_masks(
                        mask_ctx.rng_for(records[g]),
                        groups[g].len(),
                        &self.mul_mask_bound,
                    )
                },
                |g| mul_ctx.at(records[g]),
                self.mul_packing.as_ref(),
            )?;
        } else {
            for (g, ys) in groups.iter().enumerate() {
                let masks =
                    zero_sum_masks(mask_ctx.rng_for(records[g]), ys.len(), &self.mul_mask_bound);
                mul_batch_peer(
                    chan,
                    self.peer_pk,
                    &bigints(ys),
                    &masks,
                    self.mul_packing.as_ref(),
                    &mul_ctx.at(records[g]),
                )?;
            }
        }
        Ok(())
    }
}

/// The secret-sharing substrate: 8-byte ring elements, correlations from
/// the session [`DealerTape`], substitutions accounted in the
/// [`SharingLedger`].
#[derive(Debug, Clone, Copy)]
pub struct SharingBackend {
    /// The session's shared dealer tape.
    pub tape: DealerTape,
    /// Round-batched framing inside the fold methods.
    pub batching: bool,
    /// Mask bound for dot-product output masks (clamped to
    /// [`MAX_SHARING_MASK`] so driver-side `i64` sums stay exact).
    pub dot_mask_bound: u64,
}

fn fes(values: &[i64]) -> Vec<Fe> {
    values.iter().map(|&v| Fe::embed(v)).collect()
}

impl SmcBackend for SharingBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sharing
    }

    fn compare<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        value: i64,
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<bool, SmcError> {
        match role {
            Party::Alice => sharing_compare_alice(&self.tape, chan, value, op, domain, ctx, acct),
            Party::Bob => sharing_compare_bob(&self.tape, chan, value, op, domain, ctx, acct),
        }
    }

    fn compare_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        values: &[i64],
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError> {
        match role {
            Party::Alice => {
                sharing_compare_batch_alice(&self.tape, chan, values, op, domain, ctx, acct)
            }
            Party::Bob => {
                sharing_compare_batch_bob(&self.tape, chan, values, op, domain, ctx, acct)
            }
        }
    }

    fn share_less_than<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pair: (i64, i64),
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<bool, SmcError> {
        match role {
            Party::Alice => {
                sharing_share_less_than_alice(&self.tape, chan, pair.0, pair.1, domain, ctx, acct)
            }
            Party::Bob => {
                sharing_share_less_than_bob(&self.tape, chan, pair.0, pair.1, domain, ctx, acct)
            }
        }
    }

    fn share_less_than_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pairs: &[(i64, i64)],
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError> {
        match role {
            Party::Alice => {
                sharing_share_less_than_batch_alice(&self.tape, chan, pairs, domain, ctx, acct)
            }
            Party::Bob => {
                sharing_share_less_than_batch_bob(&self.tape, chan, pairs, domain, ctx, acct)
            }
        }
    }

    fn dot_many_querier<C: Channel>(
        &self,
        chan: &mut C,
        xs: &[i64],
        expected_rows: usize,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        let us = sharing_dot_querier(&self.tape, chan, &fes(xs), expected_rows, ctx, acct)?;
        Ok(us.into_iter().map(Fe::lift).collect())
    }

    fn dot_many_responder<C: Channel>(
        &self,
        chan: &mut C,
        rows: &[Vec<i64>],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        // Masks are this party's private output shares: drawn from its own
        // session randomness at the same per-row scope the Paillier path
        // uses (`ctx.rng_for(j)`), never from the shared tape.
        let masks: Vec<i64> = (0..rows.len())
            .map(|j| sample_mask_i64(ctx.rng_for(j as u64), self.dot_mask_bound))
            .collect();
        let row_fes: Vec<Vec<Fe>> = rows.iter().map(|r| fes(r)).collect();
        sharing_dot_responder(&self.tape, chan, &row_fes, &fes(&masks), ctx, acct)?;
        Ok(masks)
    }

    fn mul_fold_keyholder<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        assert_eq!(groups.len(), records.len(), "one record scope per group");
        let mul_ctx = ctx.narrow("mul");
        let group_fes: Vec<Vec<Fe>> = groups.iter().map(|g| fes(g)).collect();
        if self.batching {
            let us = sharing_fold_keyholder_batch(
                &self.tape,
                chan,
                &group_fes,
                |g| mul_ctx.at(records[g]),
                acct,
            )?;
            Ok(us.into_iter().map(Fe::lift).collect())
        } else {
            let mut out = Vec::with_capacity(groups.len());
            for (g, xs) in group_fes.iter().enumerate() {
                let u = sharing_fold_keyholder_one(
                    &self.tape,
                    chan,
                    xs,
                    &mul_ctx.at(records[g]),
                    acct,
                )?;
                out.push(u.lift());
            }
            Ok(out)
        }
    }

    fn mul_fold_peer<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<(), SmcError> {
        assert_eq!(groups.len(), records.len(), "one record scope per group");
        let mul_ctx = ctx.narrow("mul");
        let group_fes: Vec<Vec<Fe>> = groups.iter().map(|g| fes(g)).collect();
        if self.batching {
            sharing_fold_peer_batch(
                &self.tape,
                chan,
                &group_fes,
                |g| mul_ctx.at(records[g]),
                acct,
            )
        } else {
            for (g, ys) in group_fes.iter().enumerate() {
                sharing_fold_peer_one(&self.tape, chan, ys, &mul_ctx.at(records[g]), acct)?;
            }
            Ok(())
        }
    }
}

/// Session-level backend value: the concrete choice made by
/// `ProtocolConfig::backend`, dispatching every trait method to the
/// matching substrate.
pub enum AnyBackend<'a> {
    /// Homomorphic substrate.
    Paillier(PaillierBackend<'a>),
    /// Secret-sharing substrate.
    Sharing(SharingBackend),
}

macro_rules! dispatch {
    ($self:ident, $b:ident => $call:expr) => {
        match $self {
            AnyBackend::Paillier($b) => $call,
            AnyBackend::Sharing($b) => $call,
        }
    };
}

impl SmcBackend for AnyBackend<'_> {
    fn kind(&self) -> BackendKind {
        dispatch!(self, b => b.kind())
    }

    fn compare<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        value: i64,
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<bool, SmcError> {
        dispatch!(self, b => b.compare(chan, role, value, op, domain, ctx, acct))
    }

    fn compare_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        values: &[i64],
        op: CmpOp,
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError> {
        dispatch!(self, b => b.compare_batch(chan, role, values, op, domain, ctx, acct))
    }

    fn share_less_than<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pair: (i64, i64),
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<bool, SmcError> {
        dispatch!(self, b => b.share_less_than(chan, role, pair, domain, ctx, acct))
    }

    fn share_less_than_batch<C: Channel>(
        &self,
        chan: &mut C,
        role: Party,
        pairs: &[(i64, i64)],
        domain: &ComparisonDomain,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<bool>, SmcError> {
        dispatch!(self, b => b.share_less_than_batch(chan, role, pairs, domain, ctx, acct))
    }

    fn dot_many_querier<C: Channel>(
        &self,
        chan: &mut C,
        xs: &[i64],
        expected_rows: usize,
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        dispatch!(self, b => b.dot_many_querier(chan, xs, expected_rows, ctx, acct))
    }

    fn dot_many_responder<C: Channel>(
        &self,
        chan: &mut C,
        rows: &[Vec<i64>],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        dispatch!(self, b => b.dot_many_responder(chan, rows, ctx, acct))
    }

    fn mul_fold_keyholder<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<Vec<i64>, SmcError> {
        dispatch!(self, b => b.mul_fold_keyholder(chan, groups, records, ctx, acct))
    }

    fn mul_fold_peer<C: Channel>(
        &self,
        chan: &mut C,
        groups: &[Vec<i64>],
        records: &[RecordId],
        ctx: &ProtocolContext,
        acct: &mut SharingLedger,
    ) -> Result<(), SmcError> {
        dispatch!(self, b => b.mul_fold_peer(chan, groups, records, ctx, acct))
    }
}

/// Clamps a configured (possibly `BigUint`-sized) mask bound to the
/// sharing backend's safe range. Zero-sum and output-share masks only
/// shift shares, never outcomes, so clamping is invisible to results.
pub fn clamp_sharing_bound(bound: &BigUint) -> u64 {
    bound.to_u64().unwrap_or(u64::MAX).min(MAX_SHARING_MASK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_tags_roundtrip() {
        for kind in [BackendKind::Paillier, BackendKind::Sharing] {
            assert_eq!(BackendKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(BackendKind::from_tag(9), None);
        assert_eq!(BackendKind::default(), BackendKind::Paillier);
        assert_eq!(BackendKind::Sharing.name(), "sharing");
    }

    #[test]
    fn clamp_caps_wide_bounds() {
        assert_eq!(clamp_sharing_bound(&BigUint::from_u64(100)), 100);
        let wide = BigUint::from_u64(u64::MAX);
        assert_eq!(clamp_sharing_bound(&(&wide * &wide)), MAX_SHARING_MASK);
    }
}
