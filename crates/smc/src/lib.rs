#![warn(missing_docs)]

//! Secure two-party computation primitives from Liu et al., *Privacy
//! Preserving Distributed DBSCAN Clustering*.
//!
//! The paper composes its DBSCAN protocols (crate `ppdbscan`) out of three
//! reusable primitives, all implemented here against the
//! [`ppds_transport::Channel`] abstraction:
//!
//! * [`multiplication`] — the **Multiplication Protocol** (Algorithm 2,
//!   §4.1): the key-holding party inputs `x`, the peer inputs `y` and a
//!   random mask `v`; the key holder learns `x·y + v` and nothing else.
//!   A batched dot-product variant serves the enhanced protocol's
//!   `Dist² = ⟨(ΣA², -2A₁, …, -2Aₘ, 1), (1, B₁, …, Bₘ, ΣB²)⟩` form (§5).
//! * [`millionaires`] — **Yao's Millionaires' Problem Protocol**
//!   (Algorithm 1, §3.8) over a bounded domain `[1, n0]`, instantiated with
//!   Paillier as the public-key scheme, including the random-prime retry
//!   loop ("all z_u differ by at least 2 mod p").
//! * [`compare`] — secure comparison built on YMPP, with domain shifting for
//!   signed operands, `<`/`≤` semantics, share-vs-share comparison, and
//!   three interchangeable backends: the faithful
//!   [`compare::Comparator::Yao`], the transcript-cost-equivalent
//!   [`compare::Comparator::Ideal`] (substitution documented in DESIGN.md
//!   §3), and the `O(log n0)` bitwise [`compare::Comparator::Dgk`]
//!   ([`bitwise`]) that lifts Algorithm 1's linear-domain bottleneck.
//! * [`kth`] — secure selection of the k-th smallest secret-shared distance
//!   (§5), by the O(kn) repeated-minimum scan and by expected-O(n)
//!   quickselect — the paper's two proposed algorithms.
//!
//! Every protocol is written as two symmetric halves (`*_keyholder` for the
//! party holding the decryption key, `*_peer` for the other) exchanging
//! typed messages over a [`ppds_transport::Channel`].
//! [`leakage::LeakageLog`] captures each value a protocol deliberately
//! reveals, so callers can assert an execution leaked exactly what the
//! paper's theorems permit.
//!
//! Randomness is supplied through [`context::ProtocolContext`]: every
//! entry point takes a record-scoped context and derives keyed substreams
//! (session seed → step → instance → record) instead of threading one
//! sequential generator, so draws are independent of execution order —
//! batched and unbatched framings produce byte-identical transcripts, and
//! batch items evaluate in parallel on the [`parallel`] worker pool
//! without changing a single output byte.

pub mod backend;
pub mod bitwise;
pub mod compare;
pub mod context;
pub mod error;
pub mod kth;
pub mod leakage;
pub mod millionaires;
pub mod multiplication;
pub mod parallel;
pub mod setup;
pub mod sharing;

pub use backend::{AnyBackend, BackendKind, PaillierBackend, SharingBackend, SmcBackend};
pub use context::{ProtocolContext, RecordId};
pub use error::SmcError;
pub use leakage::{LeakageEvent, LeakageLog, Party};
pub use multiplication::ResponsePacking;
pub use sharing::{DealerTape, SharingLedger, SHARING_DISCIPLINE};

#[cfg(test)]
pub(crate) mod test_helpers {
    use crate::context::ProtocolContext;
    use ppds_paillier::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::OnceLock;

    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    pub fn ctx(seed: u64) -> ProtocolContext {
        ProtocolContext::new(seed)
    }

    pub fn alice_keypair() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(0xA11CE)))
    }

    pub fn bob_keypair() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(0xB0B)))
    }
}
