//! The Multiplication Protocol (Algorithm 2, §4.1) and its batched
//! dot-product extension (§5).
//!
//! Roles follow the key, not the paper's character names, because the
//! DBSCAN protocols run it in both directions:
//!
//! * the **keyholder** owns the Paillier keypair, inputs `x`, and learns
//!   `u = x·y + v`;
//! * the **peer** inputs `y`, chooses the random mask `v`, and learns
//!   nothing (it only ever sees ciphertexts under the keyholder's key).
//!
//! In protocol HDP (§4.2) Bob is the keyholder (`x` = his attribute value)
//! and Alice the peer (`y` = her attribute value, `v` = her zero-sum blinding
//! term `r_i`). In the enhanced protocol (§5) Alice is the keyholder of the
//! dot-product form and Bob masks with `v_i`.
//!
//! All values are signed ([`BigInt`]) and ride the balanced `Z_n` encoding
//! from `ppds-paillier`; callers must keep `|x·y + v|` below `(n-1)/2`,
//! which every caller in this workspace guarantees by construction (lattice
//! coordinates and masks are tiny relative to ≥ 2^255).

use crate::error::SmcError;
use ppds_bigint::{random, BigInt, BigUint};
use ppds_paillier::{Ciphertext, Keypair, PublicKey};
use ppds_transport::Channel;
use rand::Rng;

/// Samples a mask uniformly from `[-bound, bound]`.
pub fn sample_mask<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigInt {
    if bound.is_zero() {
        return BigInt::zero();
    }
    let width = &(bound << 1usize) + 1u64; // 2·bound + 1 values
    let raw = random::gen_biguint_below(rng, &width);
    &BigInt::from(raw) - &BigInt::from(bound.clone())
}

/// Keyholder side of Algorithm 2: inputs `x`, learns `u = x·y + v`.
pub fn mul_keyholder<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keypair: &Keypair,
    x: &BigInt,
    rng: &mut R,
) -> Result<BigInt, SmcError> {
    // Step 3: send E_A(x). (Fresh secret nonce; see crate docs of
    // ppds-paillier for why the printed protocol's shared-r is not followed.)
    let cx = keypair.public.encrypt_signed(x, rng)?;
    chan.send(cx.as_biguint())?;
    // Step 6-7: receive u' and decrypt.
    let u_prime = Ciphertext::from_biguint(chan.recv()?);
    Ok(keypair.private.decrypt_signed(&u_prime)?)
}

/// Peer side of Algorithm 2: inputs `y`, draws `v` uniform in
/// `[-mask_bound, mask_bound]`, returns the `v` it used.
pub fn mul_peer<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    y: &BigInt,
    mask_bound: &BigUint,
    rng: &mut R,
) -> Result<BigInt, SmcError> {
    let cx = Ciphertext::from_biguint(chan.recv()?);
    keyholder_pk.validate(&cx)?;
    // Step 4-5: v random; u' = E(x)^y · E(v).
    let v = sample_mask(rng, mask_bound);
    let xy = keyholder_pk.mul_plain_signed(&cx, y);
    let u_prime = keyholder_pk.add(&xy, &keyholder_pk.encrypt_signed(&v, rng)?);
    chan.send(u_prime.as_biguint())?;
    Ok(v)
}

/// Keyholder side of the batched per-element protocol: inputs
/// `x_1, …, x_m`, learns `u_i = x_i·y_i + v_i` for each `i`.
///
/// This is protocol HDP's usage: `m` runs of Algorithm 2 fused into one
/// message round-trip (same ciphertext count, fewer frames).
pub fn mul_batch_keyholder<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[BigInt],
    rng: &mut R,
) -> Result<Vec<BigInt>, SmcError> {
    let cts: Vec<BigUint> = xs
        .iter()
        .map(|x| {
            keypair
                .public
                .encrypt_signed(x, rng)
                .map(|c| c.as_biguint().clone())
        })
        .collect::<Result<_, _>>()?;
    chan.send(&cts)?;
    let responses: Vec<BigUint> = chan.recv()?;
    if responses.len() != xs.len() {
        return Err(SmcError::protocol(format!(
            "expected {} masked products, got {}",
            xs.len(),
            responses.len()
        )));
    }
    responses
        .into_iter()
        .map(|c| {
            Ok(keypair
                .private
                .decrypt_signed(&Ciphertext::from_biguint(c))?)
        })
        .collect()
}

/// Peer side of [`mul_batch_keyholder`]: inputs `y_i` and caller-chosen
/// masks `v_i` (HDP passes blinding terms with `Σ v_i = 0`).
pub fn mul_batch_peer<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys: &[BigInt],
    masks: &[BigInt],
    rng: &mut R,
) -> Result<(), SmcError> {
    assert_eq!(ys.len(), masks.len(), "one mask per multiplicand");
    let cts: Vec<BigUint> = chan.recv()?;
    if cts.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "expected {} ciphertexts, got {}",
            ys.len(),
            cts.len()
        )));
    }
    let mut responses = Vec::with_capacity(cts.len());
    for ((ct, y), v) in cts.into_iter().zip(ys).zip(masks) {
        let cx = Ciphertext::from_biguint(ct);
        keyholder_pk.validate(&cx)?;
        let xy = keyholder_pk.mul_plain_signed(&cx, y);
        let masked = keyholder_pk.add(&xy, &keyholder_pk.encrypt_signed(v, rng)?);
        responses.push(masked.as_biguint().clone());
    }
    chan.send(&responses)?;
    Ok(())
}

/// Round-batched keyholder side of many [`mul_batch_keyholder`] runs: one
/// group of inputs per logical multiplication batch (e.g. one group per
/// candidate pair of a neighborhood query), all groups' ciphertexts packed
/// into **one** wire frame each direction instead of one frame pair per
/// group. Returns `u_{g,i} = x_{g,i}·y_{g,i} + v_{g,i}` per group.
///
/// Per group, ciphertexts are produced in exactly the order the sequential
/// protocol would produce them (group by group, element by element), so the
/// keyholder's RNG stream — and therefore every transcript byte except the
/// framing — matches the unbatched run.
pub fn mul_batches_keyholder<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keypair: &Keypair,
    xs_groups: &[Vec<BigInt>],
    rng: &mut R,
) -> Result<Vec<Vec<BigInt>>, SmcError> {
    if xs_groups.is_empty() {
        return Ok(Vec::new());
    }
    let cts_groups: Vec<Vec<BigUint>> = xs_groups
        .iter()
        .map(|xs| {
            xs.iter()
                .map(|x| {
                    keypair
                        .public
                        .encrypt_signed(x, rng)
                        .map(|c| c.as_biguint().clone())
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<_, _>>()?;
    chan.send_batch(&cts_groups)?;
    let responses: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if responses.len() != xs_groups.len() {
        return Err(SmcError::protocol(format!(
            "expected {} masked product groups, got {}",
            xs_groups.len(),
            responses.len()
        )));
    }
    responses
        .into_iter()
        .zip(xs_groups)
        .map(|(group, xs)| {
            if group.len() != xs.len() {
                return Err(SmcError::protocol(format!(
                    "expected {} masked products in group, got {}",
                    xs.len(),
                    group.len()
                )));
            }
            group
                .into_iter()
                .map(|c| {
                    Ok(keypair
                        .private
                        .decrypt_signed(&Ciphertext::from_biguint(c))?)
                })
                .collect()
        })
        .collect()
}

/// Round-batched peer side of [`mul_batches_keyholder`]: one coefficient
/// group per logical batch, with `draw_masks(rng, group_index)` producing
/// that group's masks **at the same point in the RNG stream** the
/// sequential protocol would draw them (mask draws and mask encryptions
/// interleave group by group). Returns the masks drawn per group.
///
/// Groups are any slice-like coefficient vectors, so a caller multiplying
/// one vector against many peer groups (HDP's neighborhood query) can pass
/// `&[&[BigInt]]` borrowing a single allocation.
pub fn mul_batches_peer<C: Channel, R: Rng + ?Sized, F, G>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys_groups: &[G],
    mut draw_masks: F,
    rng: &mut R,
) -> Result<Vec<Vec<BigInt>>, SmcError>
where
    F: FnMut(&mut R, usize) -> Vec<BigInt>,
    G: AsRef<[BigInt]>,
{
    if ys_groups.is_empty() {
        return Ok(Vec::new());
    }
    let cts_groups: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if cts_groups.len() != ys_groups.len() {
        return Err(SmcError::protocol(format!(
            "expected {} ciphertext groups, got {}",
            ys_groups.len(),
            cts_groups.len()
        )));
    }
    let mut responses: Vec<Vec<BigUint>> = Vec::with_capacity(ys_groups.len());
    let mut all_masks: Vec<Vec<BigInt>> = Vec::with_capacity(ys_groups.len());
    for (g, (cts, ys)) in cts_groups.into_iter().zip(ys_groups).enumerate() {
        let ys = ys.as_ref();
        if cts.len() != ys.len() {
            return Err(SmcError::protocol(format!(
                "expected {} ciphertexts in group {g}, got {}",
                ys.len(),
                cts.len()
            )));
        }
        let masks = draw_masks(rng, g);
        assert_eq!(masks.len(), ys.len(), "one mask per multiplicand");
        let mut group_out = Vec::with_capacity(cts.len());
        for ((ct, y), v) in cts.into_iter().zip(ys).zip(&masks) {
            let cx = Ciphertext::from_biguint(ct);
            keyholder_pk.validate(&cx)?;
            let xy = keyholder_pk.mul_plain_signed(&cx, y);
            let masked = keyholder_pk.add(&xy, &keyholder_pk.encrypt_signed(v, rng)?);
            group_out.push(masked.as_biguint().clone());
        }
        responses.push(group_out);
        all_masks.push(masks);
    }
    chan.send_batch(&responses)?;
    Ok(all_masks)
}

/// Keyholder side of the dot-product protocol (§5): inputs the vector
/// `x_1, …, x_m`, learns `u = Σ x_i·y_i + v`.
///
/// The enhanced protocol calls this with Alice's vector
/// `(ΣA_k², -2A_1, …, -2A_m, 1)` so that `u = Dist²(A, B_i) + v_i`.
pub fn dot_keyholder<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[BigInt],
    rng: &mut R,
) -> Result<BigInt, SmcError> {
    let cts: Vec<BigUint> = xs
        .iter()
        .map(|x| {
            keypair
                .public
                .encrypt_signed(x, rng)
                .map(|c| c.as_biguint().clone())
        })
        .collect::<Result<_, _>>()?;
    chan.send(&cts)?;
    let u_prime = Ciphertext::from_biguint(chan.recv()?);
    Ok(keypair.private.decrypt_signed(&u_prime)?)
}

/// Peer side of [`dot_keyholder`]: inputs `y_1, …, y_m` and the mask bound;
/// returns the `v` it drew.
pub fn dot_peer<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys: &[BigInt],
    mask_bound: &BigUint,
    rng: &mut R,
) -> Result<BigInt, SmcError> {
    let cts: Vec<BigUint> = chan.recv()?;
    if cts.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "dot product arity mismatch: {} ciphertexts vs {} coefficients",
            cts.len(),
            ys.len()
        )));
    }
    let v = sample_mask(rng, mask_bound);
    // Accumulate Π E(x_i)^{y_i} · E(v) = E(Σ x_i y_i + v).
    let mut acc = keyholder_pk.encrypt_signed(&v, rng)?;
    for (ct, y) in cts.into_iter().zip(ys) {
        if y.is_zero() {
            continue; // E(x)^0 contributes nothing
        }
        let cx = Ciphertext::from_biguint(ct);
        keyholder_pk.validate(&cx)?;
        acc = keyholder_pk.add(&acc, &keyholder_pk.mul_plain_signed(&cx, y));
    }
    chan.send(acc.as_biguint())?;
    Ok(v)
}

/// Keyholder side of the one-query/many-responses dot product used by the
/// enhanced protocol (§5): Alice's coefficient vector
/// `(ΣA², -2A_1, …, -2A_m, 1)` is encrypted **once**, and the peer answers
/// with one masked dot product per point of his: `u_j = Dist²(A, B_j) + v_j`.
pub fn dot_many_keyholder<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[BigInt],
    expected_responses: usize,
    rng: &mut R,
) -> Result<Vec<BigInt>, SmcError> {
    let cts: Vec<BigUint> = xs
        .iter()
        .map(|x| {
            keypair
                .public
                .encrypt_signed(x, rng)
                .map(|c| c.as_biguint().clone())
        })
        .collect::<Result<_, _>>()?;
    chan.send(&cts)?;
    let responses: Vec<BigUint> = chan.recv()?;
    if responses.len() != expected_responses {
        return Err(SmcError::protocol(format!(
            "expected {expected_responses} dot products, got {}",
            responses.len()
        )));
    }
    responses
        .into_iter()
        .map(|c| {
            Ok(keypair
                .private
                .decrypt_signed(&Ciphertext::from_biguint(c))?)
        })
        .collect()
}

/// Peer side of [`dot_many_keyholder`]: one coefficient row per response,
/// each dotted against the keyholder's single encrypted vector. Returns the
/// masks `v_j` drawn (uniform in `[-mask_bound, mask_bound]`).
pub fn dot_many_peer<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys_rows: &[Vec<BigInt>],
    mask_bound: &BigUint,
    rng: &mut R,
) -> Result<Vec<BigInt>, SmcError> {
    let cts_raw: Vec<BigUint> = chan.recv()?;
    let mut cts = Vec::with_capacity(cts_raw.len());
    for raw in cts_raw {
        let c = Ciphertext::from_biguint(raw);
        keyholder_pk.validate(&c)?;
        cts.push(c);
    }
    let mut responses = Vec::with_capacity(ys_rows.len());
    let mut masks = Vec::with_capacity(ys_rows.len());
    for ys in ys_rows {
        if cts.len() != ys.len() {
            return Err(SmcError::protocol(format!(
                "dot product arity mismatch: {} ciphertexts vs {} coefficients",
                cts.len(),
                ys.len()
            )));
        }
        let v = sample_mask(rng, mask_bound);
        let mut acc = keyholder_pk.encrypt_signed(&v, rng)?;
        for (ct, y) in cts.iter().zip(ys) {
            if y.is_zero() {
                continue;
            }
            acc = keyholder_pk.add(&acc, &keyholder_pk.mul_plain_signed(ct, y));
        }
        responses.push(acc.as_biguint().clone());
        masks.push(v);
    }
    chan.send(&responses)?;
    Ok(masks)
}

/// Generates `count` blinding terms that sum to zero, each component
/// uniform in `[-bound, bound]` except the last, which balances the sum —
/// the `r_1 + r_2 + … + r_m = 0` construction of protocol HDP.
pub fn zero_sum_masks<R: Rng + ?Sized>(rng: &mut R, count: usize, bound: &BigUint) -> Vec<BigInt> {
    if count == 0 {
        return Vec::new();
    }
    let mut masks: Vec<BigInt> = (0..count - 1).map(|_| sample_mask(rng, bound)).collect();
    let sum = masks.iter().fold(BigInt::zero(), |acc, m| &acc + m);
    masks.push(-&sum);
    masks
}

/// Upper bound on `|Σ x_i·y_i + v|` given element bounds; used by callers to
/// size comparison domains.
pub fn dot_product_bound(len: usize, x_bound: u64, y_bound: u64, mask_bound: &BigUint) -> BigUint {
    let per_term = BigUint::from_u128(x_bound as u128 * y_bound as u128);
    &(&per_term * len as u64) + mask_bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{bob_keypair, rng};
    use ppds_transport::duplex;

    fn bi(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    /// Runs keyholder in a thread, peer on the caller thread.
    fn run_single(x: i64, y: i64, mask_bound: u64) -> (BigInt, BigInt) {
        let (mut kchan, mut pchan) = duplex();
        let keyholder = std::thread::spawn(move || {
            let mut r = rng(1);
            mul_keyholder(&mut kchan, bob_keypair(), &bi(x), &mut r).unwrap()
        });
        let mut r = rng(2);
        let v = mul_peer(
            &mut pchan,
            &bob_keypair().public,
            &bi(y),
            &BigUint::from_u64(mask_bound),
            &mut r,
        )
        .unwrap();
        (keyholder.join().unwrap(), v)
    }

    #[test]
    fn algorithm2_identity_holds() {
        for (x, y) in [(3i64, 4i64), (0, 9), (7, 0), (-5, 6), (5, -6), (-7, -8)] {
            let (u, v) = run_single(x, y, 1000);
            assert_eq!(&u - &v, bi(x * y), "x={x}, y={y}");
        }
    }

    #[test]
    fn mask_bound_respected() {
        for seed in 0..20u64 {
            let mut r = rng(seed);
            let v = sample_mask(&mut r, &BigUint::from_u64(5));
            let v = v.to_i64().unwrap();
            assert!((-5..=5).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn zero_mask_bound_means_no_mask() {
        let (u, v) = run_single(6, 7, 0);
        assert!(v.is_zero());
        assert_eq!(u, bi(42));
    }

    #[test]
    fn masks_actually_vary() {
        let mut r = rng(3);
        let bound = BigUint::from_u64(1 << 30);
        let a = sample_mask(&mut r, &bound);
        let b = sample_mask(&mut r, &bound);
        assert_ne!(a, b);
    }

    #[test]
    fn batch_matches_singles() {
        let xs: Vec<BigInt> = [3i64, -1, 0, 12].iter().map(|&v| bi(v)).collect();
        let ys: Vec<BigInt> = [5i64, 5, -9, 2].iter().map(|&v| bi(v)).collect();
        let masks = vec![bi(10), bi(-4), bi(0), bi(-6)]; // Σ = 0
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs.clone();
        let keyholder = std::thread::spawn(move || {
            let mut r = rng(4);
            mul_batch_keyholder(&mut kchan, bob_keypair(), &xs2, &mut r).unwrap()
        });
        let mut r = rng(5);
        mul_batch_peer(&mut pchan, &bob_keypair().public, &ys, &masks, &mut r).unwrap();
        let us = keyholder.join().unwrap();
        for i in 0..xs.len() {
            let expect = &(&xs[i] * &ys[i]) + &masks[i];
            assert_eq!(us[i], expect, "element {i}");
        }
        // Sum telescopes to the exact inner product (masks cancel) — the
        // algebra HDP relies on.
        let sum = us.iter().fold(BigInt::zero(), |acc, u| &acc + u);
        assert_eq!(sum, bi(3 * 5 - 5 + 24));
    }

    #[test]
    fn batched_groups_match_singles_in_two_rounds() {
        // Three logical multiplication batches of different sizes, one wire
        // frame each way.
        let xs_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(3), bi(-1)], vec![], vec![bi(12), bi(0), bi(-7)]];
        let ys_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(5), bi(5)], vec![], vec![bi(2), bi(-9), bi(4)]];
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs_groups.clone();
        let keyholder = std::thread::spawn(move || {
            let mut r = rng(20);
            let us = mul_batches_keyholder(&mut kchan, bob_keypair(), &xs2, &mut r).unwrap();
            (us, kchan.metrics())
        });
        let mut r = rng(21);
        let sizes: Vec<usize> = ys_groups.iter().map(Vec::len).collect();
        let masks = mul_batches_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys_groups,
            |rng, g| zero_sum_masks(rng, sizes[g], &BigUint::from_u64(1000)),
            &mut r,
        )
        .unwrap();
        let (us, metrics) = keyholder.join().unwrap();
        assert_eq!(metrics.total_rounds(), 2, "one frame each direction");
        for g in 0..xs_groups.len() {
            assert_eq!(us[g].len(), xs_groups[g].len());
            for i in 0..xs_groups[g].len() {
                let expect = &(&xs_groups[g][i] * &ys_groups[g][i]) + &masks[g][i];
                assert_eq!(us[g][i], expect, "group {g} element {i}");
            }
            // Zero-sum masks cancel per group: Σu = the exact inner product.
            let sum = us[g].iter().fold(BigInt::zero(), |acc, u| &acc + u);
            let ip = xs_groups[g]
                .iter()
                .zip(&ys_groups[g])
                .fold(BigInt::zero(), |acc, (x, y)| &acc + &(x * y));
            assert_eq!(sum, ip, "group {g}");
        }
    }

    #[test]
    fn batched_group_arity_mismatch_is_protocol_error() {
        let (mut kchan, mut pchan) = duplex();
        let keyholder = std::thread::spawn(move || {
            let mut r = rng(22);
            // Two groups sent; peer expects three.
            let _ = mul_batches_keyholder(
                &mut kchan,
                bob_keypair(),
                &[vec![bi(1)], vec![bi(2)]],
                &mut r,
            );
        });
        let mut r = rng(23);
        let err = mul_batches_peer(
            &mut pchan,
            &bob_keypair().public,
            &[vec![bi(1)], vec![bi(2)], vec![bi(3)]],
            |rng, _| vec![sample_mask(rng, &BigUint::from_u64(5))],
            &mut r,
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Protocol(_)));
        drop(pchan);
        let _ = keyholder.join();
    }

    #[test]
    fn dot_product_identity() {
        let xs: Vec<BigInt> = [2i64, -3, 4].iter().map(|&v| bi(v)).collect();
        let ys: Vec<BigInt> = [10i64, 1, -2].iter().map(|&v| bi(v)).collect();
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs.clone();
        let keyholder = std::thread::spawn(move || {
            let mut r = rng(6);
            dot_keyholder(&mut kchan, bob_keypair(), &xs2, &mut r).unwrap()
        });
        let mut r = rng(7);
        let v = dot_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys,
            &BigUint::from_u64(1 << 20),
            &mut r,
        )
        .unwrap();
        let u = keyholder.join().unwrap();
        assert_eq!(&u - &v, bi(20 - 3 - 8));
    }

    #[test]
    fn dot_arity_mismatch_is_protocol_error() {
        let (mut kchan, mut pchan) = duplex();
        let keyholder = std::thread::spawn(move || {
            let mut r = rng(8);
            // Keyholder sends 2 ciphertexts; peer expects 3.
            let _ = dot_keyholder(&mut kchan, bob_keypair(), &[bi(1), bi(2)], &mut r);
        });
        let mut r = rng(9);
        let err = dot_peer(
            &mut pchan,
            &bob_keypair().public,
            &[bi(1), bi(2), bi(3)],
            &BigUint::from_u64(10),
            &mut r,
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Protocol(_)));
        drop(pchan);
        let _ = keyholder.join();
    }

    #[test]
    fn dot_many_computes_all_squared_distances() {
        // The §5 usage: Alice's vector (ΣA², -2A_1, -2A_2, 1) against Bob's
        // rows (1, B_1, B_2, ΣB²) yields dist²(A, B_j) + v_j.
        let a = [3i64, 4i64];
        let bobs = [[0i64, 0i64], [3, 0], [6, 8]];
        let a_norm = a.iter().map(|x| x * x).sum::<i64>();
        let xs: Vec<BigInt> = [a_norm, -2 * a[0], -2 * a[1], 1]
            .iter()
            .map(|&v| bi(v))
            .collect();
        let ys_rows: Vec<Vec<BigInt>> = bobs
            .iter()
            .map(|b| {
                let b_norm = b.iter().map(|x| x * x).sum::<i64>();
                vec![bi(1), bi(b[0]), bi(b[1]), bi(b_norm)]
            })
            .collect();

        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs.clone();
        let keyholder = std::thread::spawn(move || {
            let mut r = rng(12);
            dot_many_keyholder(&mut kchan, bob_keypair(), &xs2, 3, &mut r).unwrap()
        });
        let mut r = rng(13);
        let masks = dot_many_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys_rows,
            &BigUint::from_u64(1 << 16),
            &mut r,
        )
        .unwrap();
        let us = keyholder.join().unwrap();
        let expect = [25i64, 16, 25]; // dist²((3,4), ·)
        for j in 0..3 {
            assert_eq!(&us[j] - &masks[j], bi(expect[j]), "point {j}");
        }
    }

    #[test]
    fn zero_sum_masks_sum_to_zero() {
        let mut r = rng(10);
        for count in [1usize, 2, 3, 8, 33] {
            let masks = zero_sum_masks(&mut r, count, &BigUint::from_u64(1 << 16));
            assert_eq!(masks.len(), count);
            let sum = masks.iter().fold(BigInt::zero(), |acc, m| &acc + m);
            assert!(sum.is_zero(), "count = {count}");
        }
        assert!(zero_sum_masks(&mut r, 0, &BigUint::from_u64(5)).is_empty());
    }

    #[test]
    fn dot_product_bound_is_safe() {
        let bound = dot_product_bound(3, 100, 50, &BigUint::from_u64(7));
        // 3 * 100*50 + 7
        assert_eq!(bound, BigUint::from_u64(15_007));
    }

    #[test]
    fn peer_rejects_invalid_ciphertext() {
        let (mut kchan, mut pchan) = duplex();
        // Hand-inject an invalid "ciphertext" (zero).
        kchan.send(&BigUint::zero()).unwrap();
        let mut r = rng(11);
        let err = mul_peer(
            &mut pchan,
            &bob_keypair().public,
            &bi(1),
            &BigUint::from_u64(10),
            &mut r,
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Crypto(_)));
    }
}
