//! The Multiplication Protocol (Algorithm 2, §4.1) and its batched
//! dot-product extension (§5).
//!
//! Roles follow the key, not the paper's character names, because the
//! DBSCAN protocols run it in both directions:
//!
//! * the **keyholder** owns the Paillier keypair, inputs `x`, and learns
//!   `u = x·y + v`;
//! * the **peer** inputs `y`, chooses the random mask `v`, and learns
//!   nothing (it only ever sees ciphertexts under the keyholder's key).
//!
//! In protocol HDP (§4.2) Bob is the keyholder (`x` = his attribute value)
//! and Alice the peer (`y` = her attribute value, `v` = her zero-sum blinding
//! term `r_i`). In the enhanced protocol (§5) Alice is the keyholder of the
//! dot-product form and Bob masks with `v_i`.
//!
//! All values are signed ([`BigInt`]) and ride the balanced `Z_n` encoding
//! from `ppds-paillier`; callers must keep `|x·y + v|` below `(n-1)/2`,
//! which every caller in this workspace guarantees by construction (lattice
//! coordinates and masks are tiny relative to ≥ 2^255).
//!
//! Randomness: every entry point takes a record-scoped
//! [`ProtocolContext`] instead of a threaded generator. A single-group
//! call draws from `ctx.rng()`; the `mul_batches_*` forms key each group
//! through a caller-supplied scope (`scopes(g)`), so the batched run
//! derives exactly the streams the per-group sequential calls would — and
//! the per-group ciphertext work can run on the [`crate::parallel`] pool
//! without changing a byte.

use crate::context::ProtocolContext;
use crate::error::SmcError;
use crate::parallel::par_map;
use ppds_bigint::{random, BigInt, BigUint};
use ppds_observe::{trace, MetricsSnapshot};
use ppds_paillier::{Ciphertext, Keypair, PublicKey, SlotLayout};
use ppds_transport::Channel;
use rand::Rng;

/// How a response leg packs its masked values into shared Paillier words
/// (`ProtocolConfig::packing`): the peer's replies — masked products
/// `x·y + v`, masked distances `dist² + v` — are signed, so every slot
/// value is shifted by the public `offset` into `[0, 2^{slot_bits})`
/// before packing and shifted back after unpacking. The protocol layer
/// derives both fields from public bounds (coordinate bound, mask bound,
/// key size), so the two parties always agree without negotiation.
///
/// Carry-guard argument: with `offset ≥ |value|_max + |mask|_max` and
/// `slot_bits > bits(2·offset)`, every shifted slot value is strictly
/// below the slot boundary, so packed slots can never bleed into their
/// neighbors (see `ppds_paillier::packing`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponsePacking {
    /// Slot layout under the keyholder's modulus.
    pub layout: SlotLayout,
    /// Public non-negative shift making signed slot values non-negative.
    pub offset: BigUint,
}

impl ResponsePacking {
    /// The plaintext slot addend for a signed mask/value `v`: `v + offset`.
    fn slot_plain(&self, v: &BigInt) -> Result<BigUint, SmcError> {
        let shifted = v + &BigInt::from(self.offset.clone());
        if shifted.is_negative() {
            return Err(SmcError::protocol(
                "mask below the packing offset; offset must bound the mask magnitude",
            ));
        }
        Ok(shifted.into_magnitude())
    }

    /// Recovers the signed value from an unpacked slot: `slot − offset`.
    fn recover(&self, slot: &BigUint) -> BigInt {
        &BigInt::from(slot.clone()) - &BigInt::from(self.offset.clone())
    }

    /// Decrypts packed response words on the [`crate::parallel`] pool and
    /// recovers the `count` signed slot values.
    fn unpack_signed(
        &self,
        keypair: &Keypair,
        words: &[BigUint],
        count: usize,
    ) -> Result<Vec<BigInt>, SmcError> {
        let slots = unpack_words(keypair, &self.layout, words, count)?;
        Ok(slots.iter().map(|slot| self.recover(slot)).collect())
    }
}

/// Decrypts packed wire words — one CRT decryption each, fanned out on the
/// [`crate::parallel`] pool — and splits them into `count` raw slot
/// values. Shared by the signed response unpack above and the DGK verdict
/// scan in [`crate::bitwise`].
pub(crate) fn unpack_words(
    keypair: &Keypair,
    layout: &SlotLayout,
    words: &[BigUint],
    count: usize,
) -> Result<Vec<BigUint>, SmcError> {
    if words.len() != layout.words_for(count) {
        return Err(SmcError::protocol(format!(
            "expected {} packed response words for {count} slots, got {}",
            layout.words_for(count),
            words.len()
        )));
    }
    // CPU-only phase: the span attributes wall time; its traffic delta is
    // structurally zero (no channel in scope).
    let span = trace::span("unpack", MetricsSnapshot::default);
    // One Montgomery batch inversion validates the whole word vector up
    // front (same accept set and error as per-word validation), so each
    // parallel decryption skips its per-ciphertext GCD.
    let cts: Vec<Ciphertext> = words
        .iter()
        .map(|raw| Ciphertext::from_biguint(raw.clone()))
        .collect();
    keypair.public.validate_many(&cts)?;
    let plains: Vec<BigUint> = par_map(&cts, |_, ct| {
        Ok::<_, SmcError>(keypair.private.decrypt_crt_prevalidated(ct)?)
    })?;
    let mut out = Vec::with_capacity(count);
    for (w, plain) in plains.iter().enumerate() {
        let remaining = count - w * layout.capacity();
        out.extend(layout.split_word(plain, remaining));
    }
    span.end(MetricsSnapshot::default);
    Ok(out)
}

/// Samples a mask uniformly from `[-bound, bound]`. The generator is taken
/// by value so call sites pass a keyed leaf stream (`ctx.rng_for(i)`) or a
/// borrowed local (`&mut rng`).
pub fn sample_mask<R: Rng>(mut rng: R, bound: &BigUint) -> BigInt {
    if bound.is_zero() {
        return BigInt::zero();
    }
    let width = &(bound << 1usize) + 1u64; // 2·bound + 1 values
    let raw = random::gen_biguint_below(&mut rng, &width);
    &BigInt::from(raw) - &BigInt::from(bound.clone())
}

/// Keyholder side of Algorithm 2: inputs `x`, learns `u = x·y + v`.
pub fn mul_keyholder<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    x: &BigInt,
    ctx: &ProtocolContext,
) -> Result<BigInt, SmcError> {
    let mut rng = ctx.rng();
    // Step 3: send E_A(x). (Fresh secret nonce; see crate docs of
    // ppds-paillier for why the printed protocol's shared-r is not followed.)
    let cx = keypair.public.encrypt_signed(x, &mut rng)?;
    chan.send(cx.as_biguint())?;
    // Step 6-7: receive u' and decrypt.
    let u_prime = Ciphertext::from_biguint(chan.recv()?);
    Ok(keypair.private.decrypt_signed(&u_prime)?)
}

/// Peer side of Algorithm 2: inputs `y`, draws `v` uniform in
/// `[-mask_bound, mask_bound]`, returns the `v` it used.
pub fn mul_peer<C: Channel>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    y: &BigInt,
    mask_bound: &BigUint,
    ctx: &ProtocolContext,
) -> Result<BigInt, SmcError> {
    let mut rng = ctx.rng();
    let cx = Ciphertext::from_biguint(chan.recv()?);
    keyholder_pk.validate(&cx)?;
    // Step 4-5: v random; u' = E(x)^y · E(v).
    let v = sample_mask(&mut rng, mask_bound);
    let xy = keyholder_pk.mul_plain_signed(&cx, y);
    let u_prime = keyholder_pk.add(&xy, &keyholder_pk.encrypt_signed(&v, &mut rng)?);
    chan.send(u_prime.as_biguint())?;
    Ok(v)
}

/// Keyholder side of the batched per-element protocol: inputs
/// `x_1, …, x_m`, learns `u_i = x_i·y_i + v_i` for each `i`.
///
/// This is protocol HDP's usage: `m` runs of Algorithm 2 fused into one
/// message round-trip (same ciphertext count, fewer frames). `ctx` is the
/// record scope of this group — all `m` elements draw sequentially from
/// its leaf stream.
pub fn mul_batch_keyholder<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[BigInt],
    packing: Option<&ResponsePacking>,
    ctx: &ProtocolContext,
) -> Result<Vec<BigInt>, SmcError> {
    let mut rng = ctx.rng();
    let cts: Vec<BigUint> = xs
        .iter()
        .map(|x| {
            keypair
                .public
                .encrypt_signed(x, &mut rng)
                .map(|c| c.as_biguint().clone())
        })
        .collect::<Result<_, _>>()?;
    chan.send(&cts)?;
    let responses: Vec<BigUint> = chan.recv()?;
    if let Some(packing) = packing {
        // Packed reply: ⌈m/capacity⌉ words, one CRT decryption each.
        return packing.unpack_signed(keypair, &responses, xs.len());
    }
    if responses.len() != xs.len() {
        return Err(SmcError::protocol(format!(
            "expected {} masked products, got {}",
            xs.len(),
            responses.len()
        )));
    }
    responses
        .into_iter()
        .map(|c| {
            Ok(keypair
                .private
                .decrypt_signed(&Ciphertext::from_biguint(c))?)
        })
        .collect()
}

/// Peer side of [`mul_batch_keyholder`]: inputs `y_i` and caller-chosen
/// masks `v_i` (HDP passes blinding terms with `Σ v_i = 0`).
pub fn mul_batch_peer<C: Channel>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys: &[BigInt],
    masks: &[BigInt],
    packing: Option<&ResponsePacking>,
    ctx: &ProtocolContext,
) -> Result<(), SmcError> {
    assert_eq!(ys.len(), masks.len(), "one mask per multiplicand");
    let cts: Vec<BigUint> = chan.recv()?;
    if cts.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "expected {} ciphertexts, got {}",
            ys.len(),
            cts.len()
        )));
    }
    let cxs: Vec<Ciphertext> = cts.into_iter().map(Ciphertext::from_biguint).collect();
    // Batch validation: one Montgomery batch inversion over the group
    // instead of one GCD per ciphertext.
    keyholder_pk.validate_many(&cxs)?;
    if let Some(packing) = packing {
        // Packed reply: the products E(x·y) ride shifted slots and the
        // masks travel as the packed word's plaintext addends — one fresh
        // nonce per word instead of one encryption per element.
        let products: Vec<Ciphertext> = cxs
            .iter()
            .zip(ys)
            .map(|(cx, y)| keyholder_pk.mul_plain_signed(cx, y))
            .collect();
        let plains: Vec<BigUint> = masks
            .iter()
            .map(|v| packing.slot_plain(v))
            .collect::<Result<_, _>>()?;
        let words = keyholder_pk.pack_ciphertexts(
            &packing.layout,
            &products,
            &plains,
            &mut ctx.narrow("pack").rng(),
        )?;
        let wire: Vec<BigUint> = words.iter().map(|c| c.as_biguint().clone()).collect();
        chan.send(&wire)?;
        return Ok(());
    }
    let mut rng = ctx.rng();
    let mut responses = Vec::with_capacity(cxs.len());
    for ((cx, y), v) in cxs.iter().zip(ys).zip(masks) {
        let xy = keyholder_pk.mul_plain_signed(cx, y);
        let masked = keyholder_pk.add(&xy, &keyholder_pk.encrypt_signed(v, &mut rng)?);
        responses.push(masked.as_biguint().clone());
    }
    chan.send(&responses)?;
    Ok(())
}

/// Round-batched keyholder side of many [`mul_batch_keyholder`] runs: one
/// group of inputs per logical multiplication batch (e.g. one group per
/// candidate pair of a neighborhood query), all groups' ciphertexts packed
/// into **one** wire frame each direction instead of one frame pair per
/// group. Returns `u_{g,i} = x_{g,i}·y_{g,i} + v_{g,i}` per group.
///
/// `scopes(g)` is the record scope of group `g` — the same context a
/// sequential caller would hand the `g`-th [`mul_batch_keyholder`] call —
/// so the batched run draws byte-identical randomness, and the per-group
/// encryption/decryption work runs on the [`crate::parallel`] pool.
pub fn mul_batches_keyholder<C, S>(
    chan: &mut C,
    keypair: &Keypair,
    xs_groups: &[Vec<BigInt>],
    scopes: S,
    packing: Option<&ResponsePacking>,
) -> Result<Vec<Vec<BigInt>>, SmcError>
where
    C: Channel,
    S: Fn(usize) -> ProtocolContext + Sync,
{
    if xs_groups.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("mul_batch", || chan.metrics());
    let cts_groups: Vec<Vec<BigUint>> = par_map(xs_groups, |g, xs| {
        let mut rng = scopes(g).rng();
        xs.iter()
            .map(|x| {
                keypair
                    .public
                    .encrypt_signed(x, &mut rng)
                    .map(|c| c.as_biguint().clone())
            })
            .collect::<Result<Vec<_>, _>>()
    })?;
    chan.send_batch(&cts_groups)?;
    if let Some(packing) = packing {
        // Packed reply: all groups' responses ride one flat word vector
        // (slots in group order), so small groups share words instead of
        // wasting one ciphertext per element.
        let words: Vec<BigUint> = chan.recv()?;
        let total: usize = xs_groups.iter().map(Vec::len).sum();
        let flat = packing.unpack_signed(keypair, &words, total)?;
        let mut flat = flat.into_iter();
        let out = xs_groups
            .iter()
            .map(|xs| (&mut flat).take(xs.len()).collect())
            .collect();
        span.end(|| chan.metrics());
        return Ok(out);
    }
    let responses: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if responses.len() != xs_groups.len() {
        return Err(SmcError::protocol(format!(
            "expected {} masked product groups, got {}",
            xs_groups.len(),
            responses.len()
        )));
    }
    for (g, group) in responses.iter().enumerate() {
        if group.len() != xs_groups[g].len() {
            return Err(SmcError::protocol(format!(
                "expected {} masked products in group, got {}",
                xs_groups[g].len(),
                group.len()
            )));
        }
    }
    // Take ownership of the batch items so each ciphertext is wrapped in
    // place instead of cloned before decryption.
    let response_groups: Vec<Vec<Ciphertext>> = responses
        .into_iter()
        .map(|group| group.into_iter().map(Ciphertext::from_biguint).collect())
        .collect();
    let out: Vec<Vec<BigInt>> = par_map(&response_groups, |_, group| {
        group
            .iter()
            .map(|c| Ok::<_, SmcError>(keypair.private.decrypt_signed(c)?))
            .collect()
    })?;
    span.end(|| chan.metrics());
    Ok(out)
}

/// Round-batched peer side of [`mul_batches_keyholder`]: one coefficient
/// group per logical batch. `draw_masks(g)` produces group `g`'s masks
/// from the caller's own keyed streams, and `scopes(g)` is the record
/// scope whose leaf stream encrypts them — identical to what the
/// sequential [`mul_batch_peer`] call for group `g` would use, so batched
/// and unbatched transcripts match byte for byte while the homomorphic
/// work fans out on the [`crate::parallel`] pool. Returns the masks drawn
/// per group.
///
/// Groups are any slice-like coefficient vectors, so a caller multiplying
/// one vector against many peer groups (HDP's neighborhood query) can pass
/// `&[&[BigInt]]` borrowing a single allocation.
pub fn mul_batches_peer<C, F, G, S>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys_groups: &[G],
    mut draw_masks: F,
    scopes: S,
    packing: Option<&ResponsePacking>,
) -> Result<Vec<Vec<BigInt>>, SmcError>
where
    C: Channel,
    F: FnMut(usize) -> Vec<BigInt>,
    G: AsRef<[BigInt]> + Sync,
    S: Fn(usize) -> ProtocolContext + Sync,
{
    if ys_groups.is_empty() {
        return Ok(Vec::new());
    }
    let span = trace::span("mul_batch", || chan.metrics());
    let cts_groups: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if cts_groups.len() != ys_groups.len() {
        return Err(SmcError::protocol(format!(
            "expected {} ciphertext groups, got {}",
            ys_groups.len(),
            cts_groups.len()
        )));
    }
    for (g, (cts, ys)) in cts_groups.iter().zip(ys_groups).enumerate() {
        if cts.len() != ys.as_ref().len() {
            return Err(SmcError::protocol(format!(
                "expected {} ciphertexts in group {g}, got {}",
                ys.as_ref().len(),
                cts.len()
            )));
        }
    }
    let all_masks: Vec<Vec<BigInt>> = (0..ys_groups.len())
        .map(|g| {
            let masks = draw_masks(g);
            assert_eq!(
                masks.len(),
                ys_groups[g].as_ref().len(),
                "one mask per multiplicand"
            );
            masks
        })
        .collect();
    if let Some(packing) = packing {
        // Packed reply: every group's products as shifted slots of one
        // flat word vector; masks ride as plaintext addends and each word
        // is re-randomized by its single packed-nonce encryption (group 0's
        // scope hosts the word-nonce substream).
        let product_groups: Vec<Vec<Ciphertext>> = par_map(&cts_groups, |g, cts| {
            let ys = ys_groups[g].as_ref();
            let cxs: Vec<Ciphertext> = cts
                .iter()
                .map(|ct| Ciphertext::from_biguint(ct.clone()))
                .collect();
            // One batch inversion validates the whole group.
            keyholder_pk.validate_many(&cxs)?;
            Ok::<_, SmcError>(
                cxs.iter()
                    .zip(ys)
                    .map(|(cx, y)| keyholder_pk.mul_plain_signed(cx, y))
                    .collect(),
            )
        })?;
        let products: Vec<Ciphertext> = product_groups.into_iter().flatten().collect();
        let plains: Vec<BigUint> = all_masks
            .iter()
            .flatten()
            .map(|v| packing.slot_plain(v))
            .collect::<Result<_, _>>()?;
        let words = keyholder_pk.pack_ciphertexts(
            &packing.layout,
            &products,
            &plains,
            &mut scopes(0).narrow("pack").rng(),
        )?;
        let wire: Vec<BigUint> = words.iter().map(|c| c.as_biguint().clone()).collect();
        chan.send(&wire)?;
        span.end(|| chan.metrics());
        return Ok(all_masks);
    }
    let responses: Vec<Vec<BigUint>> = par_map(&cts_groups, |g, cts| {
        let mut rng = scopes(g).rng();
        let ys = ys_groups[g].as_ref();
        let cxs: Vec<Ciphertext> = cts
            .iter()
            .map(|ct| Ciphertext::from_biguint(ct.clone()))
            .collect();
        // One batch inversion validates the whole group.
        keyholder_pk.validate_many(&cxs)?;
        let mut group_out = Vec::with_capacity(cxs.len());
        for ((cx, y), v) in cxs.iter().zip(ys).zip(&all_masks[g]) {
            let xy = keyholder_pk.mul_plain_signed(cx, y);
            let masked = keyholder_pk.add(&xy, &keyholder_pk.encrypt_signed(v, &mut rng)?);
            group_out.push(masked.as_biguint().clone());
        }
        Ok::<_, SmcError>(group_out)
    })?;
    chan.send_batch(&responses)?;
    span.end(|| chan.metrics());
    Ok(all_masks)
}

/// Keyholder side of the dot-product protocol (§5): inputs the vector
/// `x_1, …, x_m`, learns `u = Σ x_i·y_i + v`.
///
/// The enhanced protocol calls this with Alice's vector
/// `(ΣA_k², -2A_1, …, -2A_m, 1)` so that `u = Dist²(A, B_i) + v_i`.
pub fn dot_keyholder<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[BigInt],
    ctx: &ProtocolContext,
) -> Result<BigInt, SmcError> {
    let mut rng = ctx.rng();
    let cts: Vec<BigUint> = xs
        .iter()
        .map(|x| {
            keypair
                .public
                .encrypt_signed(x, &mut rng)
                .map(|c| c.as_biguint().clone())
        })
        .collect::<Result<_, _>>()?;
    chan.send(&cts)?;
    let u_prime = Ciphertext::from_biguint(chan.recv()?);
    Ok(keypair.private.decrypt_signed(&u_prime)?)
}

/// Peer side of [`dot_keyholder`]: inputs `y_1, …, y_m` and the mask bound;
/// returns the `v` it drew.
pub fn dot_peer<C: Channel>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys: &[BigInt],
    mask_bound: &BigUint,
    ctx: &ProtocolContext,
) -> Result<BigInt, SmcError> {
    let mut rng = ctx.rng();
    let cts: Vec<BigUint> = chan.recv()?;
    if cts.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "dot product arity mismatch: {} ciphertexts vs {} coefficients",
            cts.len(),
            ys.len()
        )));
    }
    let v = sample_mask(&mut rng, mask_bound);
    // Accumulate Π E(x_i)^{y_i} · E(v) = E(Σ x_i y_i + v).
    let mut acc = keyholder_pk.encrypt_signed(&v, &mut rng)?;
    for (ct, y) in cts.into_iter().zip(ys) {
        if y.is_zero() {
            continue; // E(x)^0 contributes nothing
        }
        let cx = Ciphertext::from_biguint(ct);
        keyholder_pk.validate(&cx)?;
        acc = keyholder_pk.add(&acc, &keyholder_pk.mul_plain_signed(&cx, y));
    }
    chan.send(acc.as_biguint())?;
    Ok(v)
}

/// Keyholder side of the one-query/many-responses dot product used by the
/// enhanced protocol (§5): Alice's coefficient vector
/// `(ΣA², -2A_1, …, -2A_m, 1)` is encrypted **once**, and the peer answers
/// with one masked dot product per point of his: `u_j = Dist²(A, B_j) + v_j`.
pub fn dot_many_keyholder<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[BigInt],
    expected_responses: usize,
    packing: Option<&ResponsePacking>,
    ctx: &ProtocolContext,
) -> Result<Vec<BigInt>, SmcError> {
    let span = trace::span("dot_many", || chan.metrics());
    let mut rng = ctx.rng();
    let cts: Vec<BigUint> = xs
        .iter()
        .map(|x| {
            keypair
                .public
                .encrypt_signed(x, &mut rng)
                .map(|c| c.as_biguint().clone())
        })
        .collect::<Result<_, _>>()?;
    chan.send(&cts)?;
    let responses: Vec<BigUint> = chan.recv()?;
    if let Some(packing) = packing {
        // Packed reply: ⌈count/capacity⌉ words — the querier's decryption
        // bill scales with neighborhoods, not with candidate points.
        let out = packing.unpack_signed(keypair, &responses, expected_responses)?;
        span.end(|| chan.metrics());
        return Ok(out);
    }
    if responses.len() != expected_responses {
        return Err(SmcError::protocol(format!(
            "expected {expected_responses} dot products, got {}",
            responses.len()
        )));
    }
    let out = responses
        .into_iter()
        .map(|c| {
            Ok(keypair
                .private
                .decrypt_signed(&Ciphertext::from_biguint(c))?)
        })
        .collect::<Result<Vec<_>, SmcError>>()?;
    span.end(|| chan.metrics());
    Ok(out)
}

/// Peer side of [`dot_many_keyholder`]: one coefficient row per response,
/// each dotted against the keyholder's single encrypted vector. Returns the
/// masks `v_j` drawn (uniform in `[-mask_bound, mask_bound]`); row `j`
/// draws from `ctx.rng_for(j)`, so rows are order-independent and the
/// homomorphic accumulation fans out on the [`crate::parallel`] pool.
pub fn dot_many_peer<C: Channel>(
    chan: &mut C,
    keyholder_pk: &PublicKey,
    ys_rows: &[Vec<BigInt>],
    mask_bound: &BigUint,
    packing: Option<&ResponsePacking>,
    ctx: &ProtocolContext,
) -> Result<Vec<BigInt>, SmcError> {
    let span = trace::span("dot_many", || chan.metrics());
    let cts_raw: Vec<BigUint> = chan.recv()?;
    let cts: Vec<Ciphertext> = cts_raw.into_iter().map(Ciphertext::from_biguint).collect();
    // Batch validation: one Montgomery batch inversion instead of one GCD
    // per ciphertext, with the same accept set and error.
    keyholder_pk.validate_many(&cts)?;
    // Every row raises the same few ciphertexts to full-width scalars, so
    // build one fixed-base comb per ciphertext and share it across all
    // rows — evaluation then spends zero squarings per row, and the bytes
    // match the per-row mul_plain_signed/add fold exactly.
    let bases = keyholder_pk.scaled_bases(&cts);
    if let Some(packing) = packing {
        // Packed reply: row j's homomorphic dot product rides slot j; its
        // mask v_j (drawn from the same keyed stream as the unpacked form,
        // so shares agree across transports) travels as the word's
        // plaintext addend, and one packed-nonce encryption re-randomizes
        // each word.
        let per_row: Vec<(Ciphertext, BigInt)> = par_map(ys_rows, |j, ys| {
            if cts.len() != ys.len() {
                return Err(SmcError::protocol(format!(
                    "dot product arity mismatch: {} ciphertexts vs {} coefficients",
                    cts.len(),
                    ys.len()
                )));
            }
            let v = sample_mask(ctx.rng_for(j as u64), mask_bound);
            // Neutral E(0) with nonce 1; the word's packed-nonce encryption
            // re-randomizes the whole slot vector before it ships.
            let acc = Ciphertext::from_biguint(BigUint::one());
            Ok((bases.combine_signed(keyholder_pk, &acc, ys), v))
        })?;
        let (products, masks): (Vec<Ciphertext>, Vec<BigInt>) = per_row.into_iter().unzip();
        let plains: Vec<BigUint> = masks
            .iter()
            .map(|v| packing.slot_plain(v))
            .collect::<Result<_, _>>()?;
        let words = keyholder_pk.pack_ciphertexts(
            &packing.layout,
            &products,
            &plains,
            &mut ctx.narrow("pack").rng(),
        )?;
        let wire: Vec<BigUint> = words.iter().map(|c| c.as_biguint().clone()).collect();
        chan.send(&wire)?;
        span.end(|| chan.metrics());
        return Ok(masks);
    }
    let per_row: Vec<(BigUint, BigInt)> = par_map(ys_rows, |j, ys| {
        if cts.len() != ys.len() {
            return Err(SmcError::protocol(format!(
                "dot product arity mismatch: {} ciphertexts vs {} coefficients",
                cts.len(),
                ys.len()
            )));
        }
        let mut rng = ctx.rng_for(j as u64);
        let v = sample_mask(&mut rng, mask_bound);
        let acc = keyholder_pk.encrypt_signed(&v, &mut rng)?;
        let acc = bases.combine_signed(keyholder_pk, &acc, ys);
        Ok((acc.as_biguint().clone(), v))
    })?;
    let (responses, masks): (Vec<BigUint>, Vec<BigInt>) = per_row.into_iter().unzip();
    chan.send(&responses)?;
    span.end(|| chan.metrics());
    Ok(masks)
}

/// Generates `count` blinding terms that sum to zero, each component
/// uniform in `[-bound, bound]` except the last, which balances the sum —
/// the `r_1 + r_2 + … + r_m = 0` construction of protocol HDP. The
/// generator is taken by value: pass a keyed leaf stream
/// (`ctx.rng_for(record)`) so the draw is order-independent.
pub fn zero_sum_masks<R: Rng>(mut rng: R, count: usize, bound: &BigUint) -> Vec<BigInt> {
    if count == 0 {
        return Vec::new();
    }
    let mut masks: Vec<BigInt> = (0..count - 1)
        .map(|_| sample_mask(&mut rng, bound))
        .collect();
    let sum = masks.iter().fold(BigInt::zero(), |acc, m| &acc + m);
    masks.push(-&sum);
    masks
}

/// Upper bound on `|Σ x_i·y_i + v|` given element bounds; used by callers to
/// size comparison domains.
pub fn dot_product_bound(len: usize, x_bound: u64, y_bound: u64, mask_bound: &BigUint) -> BigUint {
    let per_term = BigUint::from_u128(x_bound as u128 * y_bound as u128);
    &(&per_term * len as u64) + mask_bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::force_workers;
    use crate::test_helpers::{bob_keypair, ctx, rng};
    use ppds_transport::duplex;

    fn bi(v: i64) -> BigInt {
        BigInt::from_i64(v)
    }

    /// Runs keyholder in a thread, peer on the caller thread.
    fn run_single(x: i64, y: i64, mask_bound: u64) -> (BigInt, BigInt) {
        let (mut kchan, mut pchan) = duplex();
        let keyholder = std::thread::spawn(move || {
            mul_keyholder(&mut kchan, bob_keypair(), &bi(x), &ctx(1)).unwrap()
        });
        let v = mul_peer(
            &mut pchan,
            &bob_keypair().public,
            &bi(y),
            &BigUint::from_u64(mask_bound),
            &ctx(2),
        )
        .unwrap();
        (keyholder.join().unwrap(), v)
    }

    #[test]
    fn algorithm2_identity_holds() {
        for (x, y) in [(3i64, 4i64), (0, 9), (7, 0), (-5, 6), (5, -6), (-7, -8)] {
            let (u, v) = run_single(x, y, 1000);
            assert_eq!(&u - &v, bi(x * y), "x={x}, y={y}");
        }
    }

    #[test]
    fn mask_bound_respected() {
        for seed in 0..20u64 {
            let mut r = rng(seed);
            let v = sample_mask(&mut r, &BigUint::from_u64(5));
            let v = v.to_i64().unwrap();
            assert!((-5..=5).contains(&v), "v = {v}");
        }
    }

    #[test]
    fn zero_mask_bound_means_no_mask() {
        let (u, v) = run_single(6, 7, 0);
        assert!(v.is_zero());
        assert_eq!(u, bi(42));
    }

    #[test]
    fn masks_actually_vary() {
        let mut r = rng(3);
        let bound = BigUint::from_u64(1 << 30);
        let a = sample_mask(&mut r, &bound);
        let b = sample_mask(&mut r, &bound);
        assert_ne!(a, b);
        // Keyed leaf streams vary across records too.
        let step = ctx(9).narrow("mask");
        assert_ne!(
            sample_mask(step.rng_for(0), &bound),
            sample_mask(step.rng_for(1), &bound)
        );
    }

    #[test]
    fn batch_matches_singles() {
        let xs: Vec<BigInt> = [3i64, -1, 0, 12].iter().map(|&v| bi(v)).collect();
        let ys: Vec<BigInt> = [5i64, 5, -9, 2].iter().map(|&v| bi(v)).collect();
        let masks = vec![bi(10), bi(-4), bi(0), bi(-6)]; // Σ = 0
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs.clone();
        let keyholder = std::thread::spawn(move || {
            mul_batch_keyholder(&mut kchan, bob_keypair(), &xs2, None, &ctx(4)).unwrap()
        });
        mul_batch_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys,
            &masks,
            None,
            &ctx(5),
        )
        .unwrap();
        let us = keyholder.join().unwrap();
        for i in 0..xs.len() {
            let expect = &(&xs[i] * &ys[i]) + &masks[i];
            assert_eq!(us[i], expect, "element {i}");
        }
        // Sum telescopes to the exact inner product (masks cancel) — the
        // algebra HDP relies on.
        let sum = us.iter().fold(BigInt::zero(), |acc, u| &acc + u);
        assert_eq!(sum, bi(3 * 5 - 5 + 24));
    }

    fn run_batched_groups(
        xs_groups: &[Vec<BigInt>],
        ys_groups: &[Vec<BigInt>],
        seed_k: u64,
        seed_p: u64,
    ) -> (
        Vec<Vec<BigInt>>,
        Vec<Vec<BigInt>>,
        ppds_transport::MetricsSnapshot,
    ) {
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs_groups.to_vec();
        let keyholder = std::thread::spawn(move || {
            let kctx = ctx(seed_k).narrow("mul");
            let us =
                mul_batches_keyholder(&mut kchan, bob_keypair(), &xs2, |g| kctx.at(g as u64), None)
                    .unwrap();
            (us, kchan.metrics())
        });
        let pctx = ctx(seed_p);
        let mask_ctx = pctx.narrow("mask");
        let mul_ctx = pctx.narrow("mul");
        let sizes: Vec<usize> = ys_groups.iter().map(Vec::len).collect();
        let masks = mul_batches_peer(
            &mut pchan,
            &bob_keypair().public,
            ys_groups,
            |g| {
                zero_sum_masks(
                    mask_ctx.rng_for(g as u64),
                    sizes[g],
                    &BigUint::from_u64(1000),
                )
            },
            |g| mul_ctx.at(g as u64),
            None,
        )
        .unwrap();
        let (us, metrics) = keyholder.join().unwrap();
        (us, masks, metrics)
    }

    #[test]
    fn batched_groups_match_singles_in_two_rounds() {
        // Three logical multiplication batches of different sizes, one wire
        // frame each way.
        let xs_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(3), bi(-1)], vec![], vec![bi(12), bi(0), bi(-7)]];
        let ys_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(5), bi(5)], vec![], vec![bi(2), bi(-9), bi(4)]];
        let (us, masks, metrics) = run_batched_groups(&xs_groups, &ys_groups, 20, 21);
        assert_eq!(metrics.total_rounds(), 2, "one frame each direction");
        for g in 0..xs_groups.len() {
            assert_eq!(us[g].len(), xs_groups[g].len());
            for i in 0..xs_groups[g].len() {
                let expect = &(&xs_groups[g][i] * &ys_groups[g][i]) + &masks[g][i];
                assert_eq!(us[g][i], expect, "group {g} element {i}");
            }
            // Zero-sum masks cancel per group: Σu = the exact inner product.
            let sum = us[g].iter().fold(BigInt::zero(), |acc, u| &acc + u);
            let ip = xs_groups[g]
                .iter()
                .zip(&ys_groups[g])
                .fold(BigInt::zero(), |acc, (x, y)| &acc + &(x * y));
            assert_eq!(sum, ip, "group {g}");
        }
    }

    #[test]
    fn batched_groups_equal_sequential_group_calls_byte_for_byte() {
        // The keyed-substream discipline's core promise at this layer: the
        // batched run and per-group sequential calls with the same scopes
        // produce identical ciphertext streams — masks and all.
        let xs_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(3), bi(-1)], vec![bi(7)], vec![bi(0), bi(2)]];
        let ys_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(5), bi(5)], vec![bi(-2)], vec![bi(1), bi(4)]];
        let (us_b, masks_b, _) = run_batched_groups(&xs_groups, &ys_groups, 30, 31);

        // Sequential: one mul_batch_* exchange per group, scoped at(g).
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs_groups.clone();
        let keyholder = std::thread::spawn(move || {
            let kctx = ctx(30).narrow("mul");
            xs2.iter()
                .enumerate()
                .map(|(g, xs)| {
                    mul_batch_keyholder(&mut kchan, bob_keypair(), xs, None, &kctx.at(g as u64))
                        .unwrap()
                })
                .collect::<Vec<_>>()
        });
        let pctx = ctx(31);
        let mask_ctx = pctx.narrow("mask");
        let mul_ctx = pctx.narrow("mul");
        let mut masks_s = Vec::new();
        for (g, ys) in ys_groups.iter().enumerate() {
            let masks = zero_sum_masks(
                mask_ctx.rng_for(g as u64),
                ys.len(),
                &BigUint::from_u64(1000),
            );
            mul_batch_peer(
                &mut pchan,
                &bob_keypair().public,
                ys,
                &masks,
                None,
                &mul_ctx.at(g as u64),
            )
            .unwrap();
            masks_s.push(masks);
        }
        let us_s = keyholder.join().unwrap();
        assert_eq!(us_b, us_s, "masked products identical across framings");
        assert_eq!(masks_b, masks_s, "mask draws identical across framings");
    }

    #[test]
    fn parallel_batches_are_byte_identical() {
        // Same batched exchange with 1 worker and with 4: every wire byte
        // (and thus every mask and nonce) must match.
        let xs_groups: Vec<Vec<BigInt>> = (0..6).map(|g| vec![bi(g), bi(-g), bi(2 * g)]).collect();
        let ys_groups: Vec<Vec<BigInt>> = (0..6).map(|g| vec![bi(1), bi(g), bi(-3)]).collect();
        let (us_1, masks_1, _) = {
            let _guard = force_workers(1);
            run_batched_groups(&xs_groups, &ys_groups, 40, 41)
        };
        let (us_4, masks_4, _) = {
            let _guard = force_workers(4);
            run_batched_groups(&xs_groups, &ys_groups, 40, 41)
        };
        assert_eq!(us_1, us_4);
        assert_eq!(masks_1, masks_4);
    }

    #[test]
    fn batched_group_arity_mismatch_is_protocol_error() {
        let (mut kchan, mut pchan) = duplex();
        let keyholder = std::thread::spawn(move || {
            let kctx = ctx(22);
            // Two groups sent; peer expects three.
            let _ = mul_batches_keyholder(
                &mut kchan,
                bob_keypair(),
                &[vec![bi(1)], vec![bi(2)]],
                |g| kctx.at(g as u64),
                None,
            );
        });
        let pctx = ctx(23);
        let err = mul_batches_peer(
            &mut pchan,
            &bob_keypair().public,
            &[vec![bi(1)], vec![bi(2)], vec![bi(3)]],
            |g| {
                vec![sample_mask(
                    pctx.narrow("mask").rng_for(g as u64),
                    &BigUint::from_u64(5),
                )]
            },
            |g| pctx.narrow("mul").at(g as u64),
            None,
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Protocol(_)));
        drop(pchan);
        let _ = keyholder.join();
    }

    #[test]
    fn dot_product_identity() {
        let xs: Vec<BigInt> = [2i64, -3, 4].iter().map(|&v| bi(v)).collect();
        let ys: Vec<BigInt> = [10i64, 1, -2].iter().map(|&v| bi(v)).collect();
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs.clone();
        let keyholder = std::thread::spawn(move || {
            dot_keyholder(&mut kchan, bob_keypair(), &xs2, &ctx(6)).unwrap()
        });
        let v = dot_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys,
            &BigUint::from_u64(1 << 20),
            &ctx(7),
        )
        .unwrap();
        let u = keyholder.join().unwrap();
        assert_eq!(&u - &v, bi(20 - 3 - 8));
    }

    #[test]
    fn dot_arity_mismatch_is_protocol_error() {
        let (mut kchan, mut pchan) = duplex();
        let keyholder = std::thread::spawn(move || {
            // Keyholder sends 2 ciphertexts; peer expects 3.
            let _ = dot_keyholder(&mut kchan, bob_keypair(), &[bi(1), bi(2)], &ctx(8));
        });
        let err = dot_peer(
            &mut pchan,
            &bob_keypair().public,
            &[bi(1), bi(2), bi(3)],
            &BigUint::from_u64(10),
            &ctx(9),
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Protocol(_)));
        drop(pchan);
        let _ = keyholder.join();
    }

    #[test]
    fn dot_many_computes_all_squared_distances() {
        // The §5 usage: Alice's vector (ΣA², -2A_1, -2A_2, 1) against Bob's
        // rows (1, B_1, B_2, ΣB²) yields dist²(A, B_j) + v_j.
        let a = [3i64, 4i64];
        let bobs = [[0i64, 0i64], [3, 0], [6, 8]];
        let a_norm = a.iter().map(|x| x * x).sum::<i64>();
        let xs: Vec<BigInt> = [a_norm, -2 * a[0], -2 * a[1], 1]
            .iter()
            .map(|&v| bi(v))
            .collect();
        let ys_rows: Vec<Vec<BigInt>> = bobs
            .iter()
            .map(|b| {
                let b_norm = b.iter().map(|x| x * x).sum::<i64>();
                vec![bi(1), bi(b[0]), bi(b[1]), bi(b_norm)]
            })
            .collect();

        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs.clone();
        let keyholder = std::thread::spawn(move || {
            dot_many_keyholder(&mut kchan, bob_keypair(), &xs2, 3, None, &ctx(12)).unwrap()
        });
        let masks = dot_many_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys_rows,
            &BigUint::from_u64(1 << 16),
            None,
            &ctx(13),
        )
        .unwrap();
        let us = keyholder.join().unwrap();
        let expect = [25i64, 16, 25]; // dist²((3,4), ·)
        for j in 0..3 {
            assert_eq!(&us[j] - &masks[j], bi(expect[j]), "point {j}");
        }
    }

    fn test_packing(offset: u64) -> ResponsePacking {
        // Slot wide enough for |value| + |mask| ≤ offset on each side.
        let bits = BigUint::from_u64(2 * offset).bit_length() + 1;
        ResponsePacking {
            layout: SlotLayout::new(bob_keypair().public.bits(), bits).unwrap(),
            offset: BigUint::from_u64(offset),
        }
    }

    #[test]
    fn packed_batch_matches_unpacked_values_with_fewer_ciphertexts() {
        let xs: Vec<BigInt> = [3i64, -1, 0, 12, 7, -9].iter().map(|&v| bi(v)).collect();
        let ys: Vec<BigInt> = [5i64, 5, -9, 2, -2, 4].iter().map(|&v| bi(v)).collect();
        let masks = vec![bi(10), bi(-4), bi(0), bi(-6), bi(3), bi(-3)]; // Σ = 0
        let packing = test_packing(1 << 12);
        assert!(
            packing.layout.capacity() >= xs.len(),
            "{:?}",
            packing.layout
        );
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs.clone();
        let p2 = packing.clone();
        let keyholder = std::thread::spawn(move || {
            let out =
                mul_batch_keyholder(&mut kchan, bob_keypair(), &xs2, Some(&p2), &ctx(4)).unwrap();
            (out, kchan.metrics().messages_received)
        });
        mul_batch_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys,
            &masks,
            Some(&packing),
            &ctx(5),
        )
        .unwrap();
        let (us, replies) = keyholder.join().unwrap();
        for i in 0..xs.len() {
            let expect = &(&xs[i] * &ys[i]) + &masks[i];
            assert_eq!(us[i], expect, "element {i}");
        }
        // All six masked products rode one packed word.
        assert_eq!(replies, 1, "one reply message carrying one word");
    }

    #[test]
    fn packed_batched_groups_match_unpacked_groups() {
        let xs_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(3), bi(-1)], vec![bi(7)], vec![bi(0), bi(2), bi(5)]];
        let ys_groups: Vec<Vec<BigInt>> =
            vec![vec![bi(5), bi(5)], vec![bi(-2)], vec![bi(1), bi(4), bi(-6)]];
        let (us_plain, masks_plain, _) = run_batched_groups(&xs_groups, &ys_groups, 30, 31);

        let packing = test_packing(1 << 12);
        let (mut kchan, mut pchan) = duplex();
        let xs2 = xs_groups.clone();
        let p2 = packing.clone();
        let keyholder = std::thread::spawn(move || {
            let kctx = ctx(30).narrow("mul");
            mul_batches_keyholder(
                &mut kchan,
                bob_keypair(),
                &xs2,
                |g| kctx.at(g as u64),
                Some(&p2),
            )
            .unwrap()
        });
        let pctx = ctx(31);
        let mask_ctx = pctx.narrow("mask");
        let mul_ctx = pctx.narrow("mul");
        let sizes: Vec<usize> = ys_groups.iter().map(Vec::len).collect();
        let masks = mul_batches_peer(
            &mut pchan,
            &bob_keypair().public,
            &ys_groups,
            |g| {
                zero_sum_masks(
                    mask_ctx.rng_for(g as u64),
                    sizes[g],
                    &BigUint::from_u64(1000),
                )
            },
            |g| mul_ctx.at(g as u64),
            Some(&packing),
        )
        .unwrap();
        let us = keyholder.join().unwrap();
        // Identical mask draws (same keyed streams) and identical masked
        // products — only the transport changed.
        assert_eq!(masks, masks_plain);
        assert_eq!(us, us_plain);
    }

    #[test]
    fn packed_dot_many_matches_unpacked_shares() {
        let a = [3i64, 4i64];
        let bobs = [[0i64, 0i64], [3, 0], [6, 8], [1, 2], [5, 5]];
        let a_norm = a.iter().map(|x| x * x).sum::<i64>();
        let xs: Vec<BigInt> = [a_norm, -2 * a[0], -2 * a[1], 1]
            .iter()
            .map(|&v| bi(v))
            .collect();
        let ys_rows: Vec<Vec<BigInt>> = bobs
            .iter()
            .map(|b| {
                let b_norm = b.iter().map(|x| x * x).sum::<i64>();
                vec![bi(1), bi(b[0]), bi(b[1]), bi(b_norm)]
            })
            .collect();
        let mask_bound = BigUint::from_u64(1 << 16);
        // Offset must cover dist² + mask: dist² ≤ 200 here, mask ≤ 2^16.
        let packing = test_packing((1 << 16) + 200);

        let run = |packing: Option<ResponsePacking>| {
            let (mut kchan, mut pchan) = duplex();
            let xs2 = xs.clone();
            let p2 = packing.clone();
            let keyholder = std::thread::spawn(move || {
                let out =
                    dot_many_keyholder(&mut kchan, bob_keypair(), &xs2, 5, p2.as_ref(), &ctx(12))
                        .unwrap();
                (out, kchan.metrics().bytes_received)
            });
            let masks = dot_many_peer(
                &mut pchan,
                &bob_keypair().public,
                &ys_rows,
                &mask_bound,
                packing.as_ref(),
                &ctx(13),
            )
            .unwrap();
            let (us, reply_bytes) = keyholder.join().unwrap();
            (us, masks, reply_bytes)
        };
        let (us_plain, masks_plain, bytes_plain) = run(None);
        let (us_packed, masks_packed, bytes_packed) = run(Some(packing));
        // Same keyed mask streams → identical shares on both sides.
        assert_eq!(masks_packed, masks_plain);
        assert_eq!(us_packed, us_plain);
        let expect = [25i64, 16, 25, 8, 5]; // dist²((3,4), ·)
        for j in 0..5 {
            assert_eq!(&us_packed[j] - &masks_packed[j], bi(expect[j]), "point {j}");
        }
        assert!(
            bytes_plain as f64 >= 4.0 * bytes_packed as f64,
            "reply bytes {bytes_plain} unpacked vs {bytes_packed} packed"
        );
    }

    #[test]
    fn packed_mask_below_offset_is_protocol_error() {
        // offset 4 cannot absorb a mask of magnitude up to 1000.
        let packing = ResponsePacking {
            layout: SlotLayout::new(bob_keypair().public.bits(), 24).unwrap(),
            offset: BigUint::from_u64(4),
        };
        let (mut kchan, mut pchan) = duplex();
        let keyholder = std::thread::spawn(move || {
            let _ = kchan.send(&vec![bob_keypair()
                .public
                .encrypt_signed(&bi(1), &mut crate::test_helpers::rng(7))
                .unwrap()
                .as_biguint()
                .clone()]);
        });
        let err = mul_batch_peer(
            &mut pchan,
            &bob_keypair().public,
            &[bi(1)],
            &[bi(-1000)],
            Some(&packing),
            &ctx(9),
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Protocol(_)));
        keyholder.join().unwrap();
    }

    #[test]
    fn zero_sum_masks_sum_to_zero() {
        let mut r = rng(10);
        for count in [1usize, 2, 3, 8, 33] {
            let masks = zero_sum_masks(&mut r, count, &BigUint::from_u64(1 << 16));
            assert_eq!(masks.len(), count);
            let sum = masks.iter().fold(BigInt::zero(), |acc, m| &acc + m);
            assert!(sum.is_zero(), "count = {count}");
        }
        assert!(zero_sum_masks(&mut r, 0, &BigUint::from_u64(5)).is_empty());
    }

    #[test]
    fn dot_product_bound_is_safe() {
        let bound = dot_product_bound(3, 100, 50, &BigUint::from_u64(7));
        // 3 * 100*50 + 7
        assert_eq!(bound, BigUint::from_u64(15_007));
    }

    #[test]
    fn peer_rejects_invalid_ciphertext() {
        let (mut kchan, mut pchan) = duplex();
        // Hand-inject an invalid "ciphertext" (zero).
        kchan.send(&BigUint::zero()).unwrap();
        let err = mul_peer(
            &mut pchan,
            &bob_keypair().public,
            &bi(1),
            &BigUint::from_u64(10),
            &ctx(11),
        )
        .unwrap_err();
        assert!(matches!(err, SmcError::Crypto(_)));
    }
}
