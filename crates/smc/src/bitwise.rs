//! Bitwise secure comparison in `O(log n0)` ciphertexts — the
//! Damgård–Geisler–Krøigaard (DGK)-style upgrade that experiment E3
//! identifies as the fix for Algorithm 1's `O(n0)` cost explosion on the
//! enhanced protocol's masked-share domains.
//!
//! Protocol (Alice holds `x`, Bob holds `y`, both `ℓ`-bit; Alice holds the
//! Paillier key):
//!
//! 1. Alice sends `E(x_i)` for every bit, most significant first.
//! 2. For each position `i` Bob homomorphically computes
//!    `c_i = x_i − y_i + 1 + 3·Σ_{j<i} (x_j ⊕ y_j)` — zero exactly when
//!    `x_i = 0`, `y_i = 1` and all more-significant bits agree, i.e. at the
//!    unique position witnessing `x < y`. (The XOR is computable because
//!    `y_j` is Bob's plaintext: `x ⊕ 0 = x`, `x ⊕ 1 = 1 − x`.)
//! 3. Bob masks each `c_i` with a fresh random scalar, re-randomizes,
//!    permutes, and returns the batch; Alice decrypts and learns whether a
//!    zero occurs — the comparison bit and nothing else (the permutation
//!    hides the witnessing position; the scalars hide the magnitudes).
//! 4. Alice tells Bob the conclusion, mirroring Algorithm 1 step 7.
//!
//! Communication: `2ℓ` ciphertexts + 1 bit, `ℓ = ⌈log₂ n0⌉` — versus
//! Algorithm 1's `n0` residues and `n0` decryptions. Both parties learn
//! exactly the comparison outcome, so the leakage profile (and therefore
//! every theorem downstream) is unchanged.
//!
//! Randomness: the mask scalars are value-rejection sampled and the
//! permutation is value-dependent, so under the old threaded-`StdRng`
//! discipline the *stream position* after a DGK call depended on the
//! inputs — the root cause of the batched-HDP leakage-order divergence.
//! Every entry point now takes a record-scoped [`ProtocolContext`]; batch
//! forms key item `i` as `ctx.rng_for(i)`, which by construction equals
//! the stream a sequential caller scoping with `ctx.at(i)` would draw, so
//! the batched items are order-independent and evaluated on the
//! [`crate::parallel`] worker pool.

use crate::context::ProtocolContext;
use crate::error::SmcError;
use crate::parallel::par_map;
use ppds_bigint::{random, BigUint};
use ppds_paillier::{Ciphertext, Keypair, PublicKey, SlotLayout};
use ppds_transport::Channel;
use rand::seq::SliceRandom;
use rand::Rng;

/// Mask width for packed verdict slots: each masked cell `c·r` hides its
/// magnitude behind a uniform nonzero `r < 2^16`. The unpacked reply sizes
/// its scalars from the key instead (up to 64 bits) because a whole `Z_n`
/// plaintext is available per cell; a packed slot budgets its width, and 16
/// bits keeps the layout capacity high while staying in the same
/// multiplicative-masking class — Alice learns only whether a zero slot
/// exists either way (a zero survives any nonzero scalar, a non-zero never
/// becomes one).
pub const DGK_PACK_MASK_BITS: usize = 16;

/// Packed-reply layout for a DGK comparison over `domain_bound`: slots hold
/// `c·r` with `c ≤ 3ℓ+2` and `r < 2^16`, derived from public data only
/// (Alice's key size and the agreed domain), so both parties compute it
/// locally. `None` when the key is too small for even one slot — the
/// packed entry points then degrade to the unpacked reply, symmetrically.
pub fn dgk_pack_layout(key_bits: usize, domain_bound: u64) -> Option<SlotLayout> {
    let ell = bit_width(domain_bound);
    let max_cell = 3 * ell as u64 + 2;
    SlotLayout::for_masked_values(key_bits, bit_width(max_cell), DGK_PACK_MASK_BITS)
}

/// Bit width needed to represent `value` (at least 1).
fn bit_width(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).max(1)
}

/// Step 1 worker: Alice's `ell` encrypted input bits, MSB first.
fn encrypt_bits<R: Rng>(
    keypair: &Keypair,
    x: u64,
    ell: usize,
    mut rng: R,
) -> Result<Vec<BigUint>, SmcError> {
    let bits: Vec<BigUint> = (0..ell)
        .rev()
        .map(|i| BigUint::from_u64((x >> i) & 1))
        .collect();
    // One shared-exponent kernel pass over all ℓ nonce exponentiations;
    // byte-identical to the former per-bit `encrypt` loop (same rng draws,
    // same pool interaction, same ladder values).
    let cts = keypair.public.encrypt_many(&bits, &mut rng)?;
    Ok(cts.into_iter().map(|c| c.as_biguint().clone()).collect())
}

/// Step 3 worker: decrypt one masked, permuted comparison vector and report
/// whether a zero (the unique `x < y` witness) occurs.
fn scan_masked(keypair: &Keypair, masked: &[BigUint], ell: usize) -> Result<bool, SmcError> {
    if masked.len() != ell {
        return Err(SmcError::protocol(format!(
            "expected {ell} comparison values, got {}",
            masked.len()
        )));
    }
    let cts: Vec<Ciphertext> = masked
        .iter()
        .map(|raw| Ciphertext::from_biguint(raw.clone()))
        .collect();
    // One batch inversion validates all ℓ cells before the CRT decryptions.
    keypair.public.validate_many(&cts)?;
    let mut x_lt_y = false;
    for ct in &cts {
        let value = keypair.private.decrypt_crt_prevalidated(ct)?;
        if value.is_zero() {
            x_lt_y = true; // the unique witnessing position
        }
    }
    Ok(x_lt_y)
}

/// Step 2 core: the unmasked comparison cells
/// `c_i = x_i − y_i + 1 + 3·Σ_{j<i} (x_j ⊕ y_j)` under Alice's key, in bit
/// order — zero exactly at the unique position witnessing `x < y`. Shared
/// by the per-cell (unpacked) and packed-word reply builders.
fn comparison_cells(
    alice_pk: &PublicKey,
    raw_bits: &[BigUint],
    y: u64,
    ell: usize,
) -> Result<Vec<Ciphertext>, SmcError> {
    if raw_bits.len() != ell {
        return Err(SmcError::protocol(format!(
            "expected {ell} encrypted bits, got {}",
            raw_bits.len()
        )));
    }
    let x_bits: Vec<Ciphertext> = raw_bits
        .iter()
        .map(|raw| Ciphertext::from_biguint(raw.clone()))
        .collect();
    // Batch membership check: one Montgomery batch inversion mod n in place
    // of ℓ binary GCDs, accepting/rejecting exactly as the per-bit loop did.
    alice_pk.validate_many(&x_bits)?;

    let one = BigUint::one();
    let enc_one = alice_pk.encrypt_with_nonce(&one, &one).expect("1 < n"); // deterministic E(1); masked before sending
    let three = BigUint::from_u64(3);

    // Running Σ (x_j ⊕ y_j) over the more-significant prefix, encrypted.
    let mut prefix_xor = alice_pk
        .encrypt_with_nonce(&BigUint::zero(), &one)
        .expect("0 < n");
    let mut cells = Vec::with_capacity(ell);
    for (pos, enc_x) in x_bits.iter().enumerate() {
        let y_bit = (y >> (ell - 1 - pos)) & 1;
        // c = x − y + 1 + 3·prefix  (all arithmetic under Alice's key)
        let mut c = alice_pk.add(enc_x, &alice_pk.mul_plain(&prefix_xor, &three));
        if y_bit == 1 {
            // x − 1 + 1 = x … minus y(=1): c = x + 3w + 1 − 1 = x + 3w
            // (nothing to add: −y + 1 = 0)
        } else {
            c = alice_pk.add(&c, &enc_one); // −y + 1 = 1
        }
        cells.push(c);

        // Update the prefix XOR: x ⊕ y = x when y = 0, 1 − x when y = 1.
        let xor = if y_bit == 0 {
            enc_x.clone()
        } else {
            alice_pk.sub(&enc_one, enc_x)
        };
        prefix_xor = alice_pk.add(&prefix_xor, &xor);
    }
    Ok(cells)
}

/// Step 2 worker: Bob's masked, permuted comparison vector for one input —
/// one ciphertext per cell.
fn masked_comparison_vector<R: Rng>(
    alice_pk: &PublicKey,
    raw_bits: &[BigUint],
    y: u64,
    ell: usize,
    mut rng: R,
) -> Result<Vec<BigUint>, SmcError> {
    let cells = comparison_cells(alice_pk, raw_bits, y, ell)?;
    let mut out = Vec::with_capacity(ell);
    for c in &cells {
        // Mask with a fresh nonzero scalar and re-randomize. The scalar is
        // sized so c·r (c ≤ 3ℓ+2) can never wrap mod n — a wrap could fake
        // a zero. Keys of ≥ 32 bits leave plenty of room.
        let r_bits = alice_pk.bits().saturating_sub(16).clamp(8, 64);
        let r = loop {
            let candidate = random::gen_biguint_bits(&mut rng, r_bits);
            if !candidate.is_zero() {
                break candidate;
            }
        };
        out.push(alice_pk.rerandomize(&alice_pk.mul_plain(c, &r), &mut rng));
    }

    // Permute so Alice cannot see which position witnessed the comparison.
    out.shuffle(&mut rng);
    Ok(out.iter().map(|c| c.as_biguint().clone()).collect())
}

/// Step 2 worker, packed form: the same masked cells, but permuted over
/// **slot positions** and packed `capacity` per word —
/// `⌈ℓ/capacity⌉` ciphertexts instead of `ℓ`. Cell `i` is masked by a
/// fresh nonzero `r_i` drawn from `ctx.rng_for(i)` (independently keyed
/// per cell, so the masks never depend on the permutation or on each
/// other), then cells and masks travel *together* through the permutation:
/// reply slot `s` holds `c_{σ(s)}·r_{σ(s)}`. The permutation `σ` draws
/// from the `"perm"` substream and each word is re-randomized by its
/// single packed-nonce encryption. Alice still learns exactly "a zero
/// slot exists" and nothing about its position.
fn masked_packed_vector(
    alice_pk: &PublicKey,
    raw_bits: &[BigUint],
    y: u64,
    ell: usize,
    layout: &SlotLayout,
    ctx: &ProtocolContext,
) -> Result<Vec<BigUint>, SmcError> {
    let cells = comparison_cells(alice_pk, raw_bits, y, ell)?;
    let masked: Vec<Ciphertext> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let r = SlotLayout::sample_slot_mask(&mut ctx.rng_for(i as u64), DGK_PACK_MASK_BITS);
            alice_pk.mul_plain(c, &r)
        })
        .collect();
    let mut order: Vec<usize> = (0..ell).collect();
    order.shuffle(&mut ctx.narrow("perm").rng());
    let permuted: Vec<Ciphertext> = order.into_iter().map(|i| masked[i].clone()).collect();
    let zeros = vec![BigUint::zero(); ell];
    let words =
        alice_pk.pack_ciphertexts(layout, &permuted, &zeros, &mut ctx.narrow("pack").rng())?;
    Ok(words.iter().map(|c| c.as_biguint().clone()).collect())
}

/// Step 3 worker, packed form: one CRT decryption per word, then a bit
/// split — `⌈ℓ/capacity⌉` decryptions instead of `ℓ`. Words are decrypted
/// on the [`crate::parallel`] pool via the shared
/// [`crate::multiplication::unpack_words`].
fn scan_packed(
    keypair: &Keypair,
    words: &[BigUint],
    ell: usize,
    layout: &SlotLayout,
) -> Result<bool, SmcError> {
    let slots = crate::multiplication::unpack_words(keypair, layout, words, ell)?;
    // A zero slot is the unique witnessing position.
    Ok(slots.iter().any(BigUint::is_zero))
}

/// Alice's side: inputs `x`, learns whether `x < y`. Both inputs must be
/// `< 2^63` (they are domain-encoded comparison operands, far smaller).
/// `ctx` is the record scope of this comparison.
pub fn dgk_alice<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    x: u64,
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let ell = bit_width(domain_bound);
    // Step 1: encrypted bits, MSB first.
    chan.send(&encrypt_bits(keypair, x, ell, ctx.rng())?)?;
    // Step 3: decrypt the masked, permuted c_i values.
    let masked: Vec<BigUint> = chan.recv()?;
    let x_lt_y = scan_masked(keypair, &masked, ell)?;
    // Step 4: tell Bob, mirroring Algorithm 1's final message.
    chan.send(&x_lt_y)?;
    Ok(x_lt_y)
}

/// Bob's side: inputs `y`, learns whether `x < y`. `ctx` is the record
/// scope of this comparison.
pub fn dgk_bob<C: Channel>(
    chan: &mut C,
    alice_pk: &PublicKey,
    y: u64,
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let ell = bit_width(domain_bound);
    let raw_bits: Vec<BigUint> = chan.recv()?;
    let wire = masked_comparison_vector(alice_pk, &raw_bits, y, ell, ctx.rng())?;
    chan.send(&wire)?;
    Ok(chan.recv()?)
}

/// Round-batched Alice side: `k` comparisons against Bob's `k` inputs in
/// **three wire rounds total** (one frame of `k·ℓ` encrypted bits out, one
/// frame of masked vectors back, one frame of conclusions out), versus
/// `3k` rounds for `k` sequential [`dgk_alice`] calls.
///
/// Comparison `i` draws from `ctx.rng_for(i)` — exactly the stream a
/// sequential caller scoping [`dgk_alice`] with `ctx.at(i)` would use — so
/// outcomes, ciphertexts, and the leakage profile are identical to the
/// unbatched run regardless of evaluation order, and the `k·ℓ` ciphertext
/// encryptions/decryptions run on the [`crate::parallel`] pool.
pub fn dgk_batch_alice<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[u64],
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    if xs.is_empty() {
        return Ok(Vec::new());
    }
    let ell = bit_width(domain_bound);
    let bit_groups: Vec<Vec<BigUint>> = par_map(xs, |i, &x| {
        encrypt_bits(keypair, x, ell, ctx.rng_for(i as u64))
    })?;
    chan.send_batch(&bit_groups)?;

    let masked_groups: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if masked_groups.len() != xs.len() {
        return Err(SmcError::protocol(format!(
            "expected {} masked comparison vectors, got {}",
            xs.len(),
            masked_groups.len()
        )));
    }
    let results: Vec<bool> = par_map(&masked_groups, |_, masked| {
        scan_masked(keypair, masked, ell)
    })?;
    chan.send_batch(&results)?;
    Ok(results)
}

/// Round-batched Bob side of [`dgk_batch_alice`]: comparison `i` draws its
/// mask scalars and permutation from `ctx.rng_for(i)`, so each masked
/// vector is independent of every other item's value-dependent rejection
/// sampling — the property that closes the old batched-HDP leakage-order
/// gap and lets the vectors be computed in parallel.
pub fn dgk_batch_bob<C: Channel>(
    chan: &mut C,
    alice_pk: &PublicKey,
    ys: &[u64],
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    if ys.is_empty() {
        return Ok(Vec::new());
    }
    let ell = bit_width(domain_bound);
    let bit_groups: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if bit_groups.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "expected {} encrypted bit groups, got {}",
            ys.len(),
            bit_groups.len()
        )));
    }
    let out_groups: Vec<Vec<BigUint>> = par_map(&bit_groups, |i, raw_bits| {
        masked_comparison_vector(alice_pk, raw_bits, ys[i], ell, ctx.rng_for(i as u64))
    })?;
    chan.send_batch(&out_groups)?;

    let results: Vec<bool> = chan.recv_batch()?;
    if results.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "expected {} conclusions, got {}",
            ys.len(),
            results.len()
        )));
    }
    Ok(results)
}

/// Packed-reply Alice side: identical to [`dgk_alice`] except step 3 — the
/// masked verdict vector arrives as `⌈ℓ/capacity⌉` packed words instead of
/// `ℓ` ciphertexts, so both the reply bytes and Alice's decryption count
/// shrink by the packing factor. Falls back to the unpacked protocol
/// (symmetrically — the layout is a function of public data) when the key
/// cannot fit even one slot.
pub fn dgk_packed_alice<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    x: u64,
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let Some(layout) = dgk_pack_layout(keypair.public.bits(), domain_bound) else {
        return dgk_alice(chan, keypair, x, domain_bound, ctx);
    };
    let ell = bit_width(domain_bound);
    chan.send(&encrypt_bits(keypair, x, ell, ctx.rng())?)?;
    let words: Vec<BigUint> = chan.recv()?;
    let x_lt_y = scan_packed(keypair, &words, ell, &layout)?;
    chan.send(&x_lt_y)?;
    Ok(x_lt_y)
}

/// Packed-reply Bob side of [`dgk_packed_alice`].
pub fn dgk_packed_bob<C: Channel>(
    chan: &mut C,
    alice_pk: &PublicKey,
    y: u64,
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<bool, SmcError> {
    let Some(layout) = dgk_pack_layout(alice_pk.bits(), domain_bound) else {
        return dgk_bob(chan, alice_pk, y, domain_bound, ctx);
    };
    let ell = bit_width(domain_bound);
    let raw_bits: Vec<BigUint> = chan.recv()?;
    let wire = masked_packed_vector(alice_pk, &raw_bits, y, ell, &layout, ctx)?;
    chan.send(&wire)?;
    Ok(chan.recv()?)
}

/// Round-batched, packed-reply Alice side: the wire shape of
/// [`dgk_batch_alice`] with every reply group packed — `k·⌈ℓ/capacity⌉`
/// reply ciphertexts (and decryptions) for `k` comparisons instead of
/// `k·ℓ`. Comparison `i` scopes its packed reply under `ctx.at(i)`,
/// matching a sequential [`dgk_packed_alice`] caller.
pub fn dgk_batch_packed_alice<C: Channel>(
    chan: &mut C,
    keypair: &Keypair,
    xs: &[u64],
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    let Some(layout) = dgk_pack_layout(keypair.public.bits(), domain_bound) else {
        return dgk_batch_alice(chan, keypair, xs, domain_bound, ctx);
    };
    if xs.is_empty() {
        return Ok(Vec::new());
    }
    let ell = bit_width(domain_bound);
    let bit_groups: Vec<Vec<BigUint>> = par_map(xs, |i, &x| {
        encrypt_bits(keypair, x, ell, ctx.rng_for(i as u64))
    })?;
    chan.send_batch(&bit_groups)?;

    let word_groups: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if word_groups.len() != xs.len() {
        return Err(SmcError::protocol(format!(
            "expected {} packed comparison groups, got {}",
            xs.len(),
            word_groups.len()
        )));
    }
    let results: Vec<bool> = par_map(&word_groups, |_, words| {
        scan_packed(keypair, words, ell, &layout)
    })?;
    chan.send_batch(&results)?;
    Ok(results)
}

/// Round-batched, packed-reply Bob side of [`dgk_batch_packed_alice`].
pub fn dgk_batch_packed_bob<C: Channel>(
    chan: &mut C,
    alice_pk: &PublicKey,
    ys: &[u64],
    domain_bound: u64,
    ctx: &ProtocolContext,
) -> Result<Vec<bool>, SmcError> {
    let Some(layout) = dgk_pack_layout(alice_pk.bits(), domain_bound) else {
        return dgk_batch_bob(chan, alice_pk, ys, domain_bound, ctx);
    };
    if ys.is_empty() {
        return Ok(Vec::new());
    }
    let ell = bit_width(domain_bound);
    let bit_groups: Vec<Vec<BigUint>> = chan.recv_batch()?;
    if bit_groups.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "expected {} encrypted bit groups, got {}",
            ys.len(),
            bit_groups.len()
        )));
    }
    let out_groups: Vec<Vec<BigUint>> = par_map(&bit_groups, |i, raw_bits| {
        masked_packed_vector(alice_pk, raw_bits, ys[i], ell, &layout, &ctx.at(i as u64))
    })?;
    chan.send_batch(&out_groups)?;

    let results: Vec<bool> = chan.recv_batch()?;
    if results.len() != ys.len() {
        return Err(SmcError::protocol(format!(
            "expected {} conclusions, got {}",
            ys.len(),
            results.len()
        )));
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::force_workers;
    use crate::test_helpers::{alice_keypair, ctx, rng};
    use ppds_transport::duplex;

    fn run(x: u64, y: u64, bound: u64, seed: u64) -> bool {
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            dgk_alice(&mut achan, alice_keypair(), x, bound, &ctx(seed)).unwrap()
        });
        let bob_view = dgk_bob(
            &mut bchan,
            &alice_keypair().public,
            y,
            bound,
            &ctx(seed + 1),
        )
        .unwrap();
        let alice_view = alice.join().unwrap();
        assert_eq!(alice_view, bob_view, "views must agree");
        alice_view
    }

    #[test]
    fn exhaustive_small_domain() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                assert_eq!(run(x, y, 7, 100 + x * 8 + y), x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn wide_values() {
        let bound = (1 << 40) - 1;
        for (x, y) in [
            (0u64, 1u64),
            (1, 0),
            (123_456_789, 123_456_790),
            (123_456_790, 123_456_789),
            ((1 << 40) - 1, (1 << 40) - 1),
            (0, (1 << 40) - 1),
            ((1 << 40) - 1, 0),
            (1 << 39, (1 << 39) + 1),
        ] {
            assert_eq!(
                run(x, y, bound, 7_000 + x % 97 + y % 89),
                x < y,
                "{x} < {y}"
            );
        }
    }

    #[test]
    fn equal_values_are_not_less() {
        for v in [0u64, 1, 5, 100] {
            assert!(!run(v, v, 127, 9_000 + v));
        }
    }

    #[test]
    fn truncated_batches_are_protocol_errors() {
        let (mut achan, mut bchan) = duplex();
        // Fake Alice sends too few encrypted bits.
        let kp = alice_keypair();
        let mut r = rng(1);
        let short: Vec<BigUint> = vec![kp
            .public
            .encrypt(&BigUint::zero(), &mut r)
            .unwrap()
            .as_biguint()
            .clone()];
        achan.send(&short).unwrap();
        let err = dgk_bob(&mut bchan, &kp.public, 3, 7, &ctx(1)).unwrap_err();
        assert!(matches!(err, SmcError::Protocol(_)));
    }

    fn run_batch(
        xs: Vec<u64>,
        ys: Vec<u64>,
        bound: u64,
        seeds: (u64, u64),
    ) -> (Vec<bool>, ppds_transport::MetricsSnapshot) {
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            let out =
                dgk_batch_alice(&mut achan, alice_keypair(), &xs, bound, &ctx(seeds.0)).unwrap();
            (out, achan.metrics())
        });
        let bob_view = dgk_batch_bob(
            &mut bchan,
            &alice_keypair().public,
            &ys,
            bound,
            &ctx(seeds.1),
        )
        .unwrap();
        let (alice_view, metrics) = alice.join().unwrap();
        assert_eq!(alice_view, bob_view);
        (alice_view, metrics)
    }

    #[test]
    fn batch_agrees_with_sequential_and_collapses_rounds() {
        let bound = 1023u64;
        let xs: Vec<u64> = vec![0, 1, 400, 700, 1023, 512];
        let ys: Vec<u64> = vec![1, 0, 700, 700, 0, 513];
        let (alice_view, metrics) = run_batch(xs.clone(), ys.clone(), bound, (40, 41));
        for i in 0..xs.len() {
            assert_eq!(alice_view[i], xs[i] < ys[i], "{} < {}", xs[i], ys[i]);
        }
        // 3 wire rounds total for 6 comparisons (2 sent by Alice, 1 received).
        assert_eq!(metrics.rounds_sent, 2);
        assert_eq!(metrics.rounds_received, 1);
        assert!(metrics.total_messages() > metrics.total_rounds());
    }

    #[test]
    fn batch_items_equal_scoped_sequential_calls() {
        // Keyed substreams: batch item i must produce exactly the bytes of
        // a sequential dgk run scoped at(i) — the invariant that makes
        // batched and unbatched protocol framings transcript-identical.
        let bound = 255u64;
        let xs: Vec<u64> = vec![3, 200, 77];
        let ys: Vec<u64> = vec![4, 100, 77];
        let (batch_view, _) = run_batch(xs.clone(), ys.clone(), bound, (50, 51));
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            let (mut achan, mut bchan) = duplex();
            let alice = std::thread::spawn(move || {
                dgk_alice(&mut achan, alice_keypair(), x, bound, &ctx(50).at(i as u64)).unwrap()
            });
            let bob_view = dgk_bob(
                &mut bchan,
                &alice_keypair().public,
                y,
                bound,
                &ctx(51).at(i as u64),
            )
            .unwrap();
            assert_eq!(alice.join().unwrap(), batch_view[i]);
            assert_eq!(bob_view, batch_view[i]);
        }
    }

    #[test]
    fn parallel_batch_is_byte_identical_to_sequential_batch() {
        let bound = 1023u64;
        let xs: Vec<u64> = (0..12).map(|i| i * 85).collect();
        let ys: Vec<u64> = (0..12).map(|i| 1020 - i * 85).collect();
        let run_with = |workers| {
            let _guard = force_workers(workers);
            let (mut achan, mut bchan) = duplex();
            let xs = xs.clone();
            let alice = std::thread::spawn(move || {
                let out =
                    dgk_batch_alice(&mut achan, alice_keypair(), &xs, bound, &ctx(60)).unwrap();
                (out, achan.metrics())
            });
            let bob =
                dgk_batch_bob(&mut bchan, &alice_keypair().public, &ys, bound, &ctx(61)).unwrap();
            let (a, metrics) = alice.join().unwrap();
            (a, bob, metrics.total_bytes())
        };
        let (a1, b1, bytes1) = run_with(1);
        let (a4, b4, bytes4) = run_with(4);
        assert_eq!(a1, a4);
        assert_eq!(b1, b4);
        assert_eq!(
            bytes1, bytes4,
            "every wire byte identical under parallelism"
        );
    }

    #[test]
    fn empty_batch_touches_no_wire() {
        let (mut achan, mut bchan) = duplex();
        let a = dgk_batch_alice(&mut achan, alice_keypair(), &[], 7, &ctx(42)).unwrap();
        let b = dgk_batch_bob(&mut bchan, &alice_keypair().public, &[], 7, &ctx(42)).unwrap();
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(achan.metrics().total_rounds(), 0);
    }

    fn run_packed(x: u64, y: u64, bound: u64, seed: u64) -> bool {
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            dgk_packed_alice(&mut achan, alice_keypair(), x, bound, &ctx(seed)).unwrap()
        });
        let bob_view = dgk_packed_bob(
            &mut bchan,
            &alice_keypair().public,
            y,
            bound,
            &ctx(seed + 1),
        )
        .unwrap();
        let alice_view = alice.join().unwrap();
        assert_eq!(alice_view, bob_view, "views must agree");
        alice_view
    }

    #[test]
    fn packed_exhaustive_small_domain() {
        for x in 0..8u64 {
            for y in 0..8u64 {
                assert_eq!(run_packed(x, y, 7, 400 + x * 8 + y), x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn packed_wide_values() {
        let bound = (1 << 40) - 1;
        for (x, y) in [
            (0u64, 1u64),
            (1, 0),
            (123_456_789, 123_456_790),
            ((1 << 40) - 1, (1 << 40) - 1),
            (0, (1 << 40) - 1),
            (1 << 39, (1 << 39) + 1),
        ] {
            assert_eq!(
                run_packed(x, y, bound, 17_000 + x % 97 + y % 89),
                x < y,
                "{x} < {y}"
            );
        }
    }

    #[test]
    fn packed_reply_ships_fewer_ciphertexts_and_decryptions() {
        // The tentpole claim at this layer: the reply leg collapses from ℓ
        // ciphertexts to ⌈ℓ/capacity⌉ words (with ℓ = 10 and 256-bit keys,
        // one word), so Alice's received bytes shrink accordingly.
        let bound = 1023u64; // ℓ = 10
        let layout = dgk_pack_layout(alice_keypair().public.bits(), bound).unwrap();
        assert!(layout.capacity() >= 10, "layout {layout:?}");
        let measure = |packed: bool| {
            let (mut achan, mut bchan) = duplex();
            let alice = std::thread::spawn(move || {
                let out = if packed {
                    dgk_packed_alice(&mut achan, alice_keypair(), 400, bound, &ctx(2))
                } else {
                    dgk_alice(&mut achan, alice_keypair(), 400, bound, &ctx(2))
                }
                .unwrap();
                (out, achan.metrics().bytes_received)
            });
            let bob = if packed {
                dgk_packed_bob(&mut bchan, &alice_keypair().public, 700, bound, &ctx(3))
            } else {
                dgk_bob(&mut bchan, &alice_keypair().public, 700, bound, &ctx(3))
            }
            .unwrap();
            let (a, reply_bytes) = alice.join().unwrap();
            assert_eq!(a, bob);
            reply_bytes
        };
        let unpacked = measure(false);
        let packed = measure(true);
        assert!(
            unpacked as f64 >= 5.0 * packed as f64,
            "reply bytes {unpacked} unpacked vs {packed} packed"
        );
    }

    #[test]
    fn packed_batch_agrees_with_unpacked_batch() {
        let bound = 1023u64;
        let xs: Vec<u64> = vec![0, 1, 400, 700, 1023, 512, 88];
        let ys: Vec<u64> = vec![1, 0, 700, 700, 0, 513, 88];
        let (plain, _) = run_batch(xs.clone(), ys.clone(), bound, (40, 41));
        let (mut achan, mut bchan) = duplex();
        let xs2 = xs.clone();
        let alice = std::thread::spawn(move || {
            dgk_batch_packed_alice(&mut achan, alice_keypair(), &xs2, bound, &ctx(40)).unwrap()
        });
        let bob = dgk_batch_packed_bob(&mut bchan, &alice_keypair().public, &ys, bound, &ctx(41))
            .unwrap();
        let packed = alice.join().unwrap();
        assert_eq!(packed, plain, "packed batch outcomes match unpacked");
        assert_eq!(bob, plain);
    }

    #[test]
    fn packed_batch_items_equal_scoped_sequential_packed_calls() {
        let bound = 255u64;
        let xs: Vec<u64> = vec![3, 200, 77];
        let ys: Vec<u64> = vec![4, 100, 77];
        let (mut achan, mut bchan) = duplex();
        let xs2 = xs.clone();
        let alice = std::thread::spawn(move || {
            dgk_batch_packed_alice(&mut achan, alice_keypair(), &xs2, bound, &ctx(50)).unwrap()
        });
        let ys2 = ys.clone();
        let batch_view =
            dgk_batch_packed_bob(&mut bchan, &alice_keypair().public, &ys2, bound, &ctx(51))
                .unwrap();
        alice.join().unwrap();
        for (i, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
            let (mut achan, mut bchan) = duplex();
            let alice = std::thread::spawn(move || {
                dgk_packed_alice(&mut achan, alice_keypair(), x, bound, &ctx(50).at(i as u64))
                    .unwrap()
            });
            let bob_view = dgk_packed_bob(
                &mut bchan,
                &alice_keypair().public,
                y,
                bound,
                &ctx(51).at(i as u64),
            )
            .unwrap();
            assert_eq!(alice.join().unwrap(), batch_view[i]);
            assert_eq!(bob_view, batch_view[i]);
        }
    }

    #[test]
    fn packed_parallel_batch_is_byte_identical_to_sequential_batch() {
        let bound = 1023u64;
        let xs: Vec<u64> = (0..12).map(|i| i * 85).collect();
        let ys: Vec<u64> = (0..12).map(|i| 1020 - i * 85).collect();
        let run_with = |workers| {
            let _guard = force_workers(workers);
            let (mut achan, mut bchan) = duplex();
            let xs = xs.clone();
            let alice = std::thread::spawn(move || {
                let out = dgk_batch_packed_alice(&mut achan, alice_keypair(), &xs, bound, &ctx(60))
                    .unwrap();
                (out, achan.metrics())
            });
            let bob =
                dgk_batch_packed_bob(&mut bchan, &alice_keypair().public, &ys, bound, &ctx(61))
                    .unwrap();
            let (a, metrics) = alice.join().unwrap();
            (a, bob, metrics.total_bytes())
        };
        let (a1, b1, bytes1) = run_with(1);
        let (a4, b4, bytes4) = run_with(4);
        assert_eq!(a1, a4);
        assert_eq!(b1, b4);
        assert_eq!(
            bytes1, bytes4,
            "every wire byte identical under parallelism"
        );
    }

    #[test]
    fn tiny_keys_fall_back_to_unpacked_symmetrically() {
        // ℓ = 40 needs 24-bit slots: a 16-bit key has no layout, so both
        // sides degrade to the unpacked protocol and still agree.
        assert!(dgk_pack_layout(16, (1 << 40) - 1).is_none());
        assert!(dgk_pack_layout(256, (1 << 40) - 1).is_some());
    }

    #[test]
    fn communication_is_logarithmic_in_domain() {
        // ℓ = 10 bits for n0 = 1023 → 20 ciphertexts total, versus the
        // faithful Yao protocol's 1023 residues (~16 KiB at 256-bit keys).
        let bound = 1023u64;
        let (mut achan, mut bchan) = duplex();
        let alice = std::thread::spawn(move || {
            dgk_alice(&mut achan, alice_keypair(), 400, bound, &ctx(2)).unwrap();
            achan.metrics().total_bytes()
        });
        dgk_bob(&mut bchan, &alice_keypair().public, 700, bound, &ctx(3)).unwrap();
        let dgk_bytes = alice.join().unwrap();
        let (m1, m2, m3) = crate::millionaires::modeled_message_sizes(256, bound + 1);
        let yao_bytes = m1 + m2 + m3;
        assert!(
            dgk_bytes * 5 < yao_bytes,
            "DGK {dgk_bytes} B should be far below Yao {yao_bytes} B"
        );
    }
}
