//! The typed participant session API — one entry point for every protocol
//! mode.
//!
//! Historically each protocol family shipped its own free-function driver
//! pair (`run_horizontal_pair`, `vertical_party`, …) with long positional
//! argument lists and a magic-number `Vec<u64>` handshake. This module
//! replaces that surface with three pieces:
//!
//! 1. **[`Participant`]** — a builder describing one party's side of a
//!    session: the agreed [`ProtocolConfig`], this party's [`Party`] role,
//!    its private [`PartyData`] view, optionally a pre-generated
//!    [`Keypair`], and a deterministic randomness source. One
//!    [`Participant::run`] call executes any two-party mode over any
//!    [`Channel`] (in-memory or TCP alike); [`Participant::run_mesh`] runs
//!    the K-party generalization over a full mesh of channels.
//! 2. **[`Hello`]** — the versioned, self-describing handshake frame. Both
//!    sides exchange one `Hello` after the key exchange; every public
//!    protocol parameter is carried as a tagged field and cross-checked,
//!    and any disagreement is reported as a typed
//!    [`CoreError::HandshakeMismatch`] naming the offending field — on
//!    *both* sides, before any protocol message flows.
//! 3. **`ModeDriver`** (crate-internal) — the shared dispatch every mode
//!    routes through, so validation, handshake, and output assembly live in
//!    one place instead of five driver modules.
//!
//! The legacy free functions still exist as thin `#[deprecated]` wrappers
//! over this module and produce byte-identical outputs (labels, leakage,
//! Yao ledger, traffic) — pinned by the `api_parity` integration tests.
//!
//! ```
//! use ppdbscan::session::{Participant, PartyData};
//! use ppdbscan::ProtocolConfig;
//! use ppds_dbscan::{DbscanParams, Point};
//! use ppds_smc::Party;
//!
//! let cfg = ProtocolConfig::new(DbscanParams { eps_sq: 4, min_pts: 3 }, 10);
//! let alice = Participant::new(cfg)
//!     .role(Party::Alice)
//!     .data(PartyData::Horizontal(vec![
//!         Point::new(vec![0, 0]),
//!         Point::new(vec![1, 1]),
//!     ]))
//!     .seed(1);
//! let bob = Participant::new(cfg)
//!     .role(Party::Bob)
//!     .data(PartyData::Horizontal(vec![
//!         Point::new(vec![0, 1]),
//!         Point::new(vec![9, 9]),
//!     ]))
//!     .seed(2);
//! let (a, b) = ppdbscan::session::run_participants(alice, bob).unwrap();
//! assert_eq!(a.meta.wire_version, ppdbscan::session::WIRE_VERSION);
//! println!("Alice sees {} clusters", a.output.clustering.num_clusters);
//! # let _ = b;
//! ```

use crate::config::{ProtocolConfig, YaoLedger};
use crate::driver::{run_pair, PartyOutput};
use crate::error::CoreError;
use ppds_dbscan::{Clustering, Point, Pruning};
use ppds_observe::{trace, SessionTrace, SpanRecorder, TraceSink};
use ppds_paillier::{FillerHandle, Keypair, PublicKey, RandomizerPool};
use ppds_smc::compare::Comparator;
use ppds_smc::kth::SelectionMethod;
use ppds_smc::{setup, BackendKind, DealerTape, LeakageLog, Party, ProtocolContext, SharingLedger};
use ppds_transport::wire::{Reader, WireDecode, WireEncode};
use ppds_transport::{duplex, Channel, MemoryChannel, TransportError};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::sync::Arc;

/// Version of the session handshake wire format. Bumped whenever the
/// [`Hello`] frame layout or the meaning of a negotiated field changes;
/// participants with different versions refuse to run (typed
/// [`CoreError::HandshakeMismatch`] on `wire_version`).
///
/// Version history: `1` was the unversioned `Vec<u64>` metadata frame of
/// the original drivers; `2` is the tagged-field `Hello` frame; `3` adds
/// the required `packing` field (plaintext-slot packing negotiation); `4`
/// adds the required `backend` field (Paillier vs additive-sharing SMC
/// substrate) and, when sharing is negotiated, a dealer-seed contribution
/// exchange immediately after the `Hello` frames; `5` adds the required
/// `pruning` field (candidate-generation policy: exhaustive all-pairs vs
/// grid-derived candidate sets).
pub const WIRE_VERSION: u32 = 5;

/// Protocol family tag, negotiated during the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Basic horizontal protocol (Algorithms 3 & 4).
    Horizontal,
    /// Vertical protocol (Algorithms 5 & 6).
    Vertical,
    /// Arbitrary-partition protocol (§4.4).
    Arbitrary,
    /// Enhanced horizontal protocol (Algorithms 7 & 8).
    Enhanced,
    /// K-party horizontal generalization (full pairwise mesh).
    Multiparty,
    /// The insecure Kumar et al. \[14\] baseline (for the Figure 1 attack
    /// demos only — not reachable through [`Participant`]).
    KumarBaseline,
}

impl Mode {
    /// The mode for a handshake tag, if the tag is known.
    pub(crate) fn from_tag(tag: u64) -> Option<Mode> {
        Some(match tag {
            1 => Mode::Horizontal,
            2 => Mode::Vertical,
            3 => Mode::Arbitrary,
            4 => Mode::Enhanced,
            5 => Mode::Multiparty,
            6 => Mode::KumarBaseline,
            _ => return None,
        })
    }

    /// Stable numeric tag carried in the handshake.
    pub(crate) fn tag(self) -> u64 {
        match self {
            Mode::Horizontal => 1,
            Mode::Vertical => 2,
            Mode::Arbitrary => 3,
            Mode::Enhanced => 4,
            Mode::Multiparty => 5,
            Mode::KumarBaseline => 6,
        }
    }

    /// Short protocol-family name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Horizontal => "horizontal",
            Mode::Vertical => "vertical",
            Mode::Arbitrary => "arbitrary",
            Mode::Enhanced => "enhanced",
            Mode::Multiparty => "multiparty",
            Mode::KumarBaseline => "kumar-baseline",
        }
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// Handshake field tags. Public protocol metadata only — every value here is
// something both parties must already know or agree on in the paper's model.
const F_MODE: u8 = 1;
const F_RECORDS: u8 = 2;
const F_DIM: u8 = 3;
const F_COORD_BOUND: u8 = 4;
const F_EPS_SQ: u8 = 5;
const F_MIN_PTS: u8 = 6;
const F_KEY_BITS: u8 = 7;
const F_COMPARATOR: u8 = 8;
const F_SELECTION: u8 = 9;
const F_MASK_BITS: u8 = 10;
const F_BATCHING: u8 = 11;
const F_PACKING: u8 = 12;
/// Optional session-id field (server deployments): a client *proposes* an
/// id in its preamble `Hello` (0 or absent = "assign me one") and the
/// server's accept reply carries the id actually granted. Not in
/// [`AGREED_FIELDS`] — the in-session handshake ignores it, so frames with
/// and without it interoperate within one wire version.
const F_SESSION_ID: u8 = 13;
const F_BACKEND: u8 = 14;
const F_PRUNING: u8 = 15;

/// Fields that must be byte-equal between the two halves (record count and
/// dimension are informational / mode-dependent and checked separately).
const AGREED_FIELDS: [(u8, &str); 12] = [
    (F_MODE, "mode"),
    (F_COORD_BOUND, "coord_bound"),
    (F_EPS_SQ, "eps_sq"),
    (F_MIN_PTS, "min_pts"),
    (F_KEY_BITS, "key_bits"),
    (F_COMPARATOR, "comparator"),
    (F_SELECTION, "selection"),
    (F_MASK_BITS, "mask_bits"),
    (F_BATCHING, "batching"),
    (F_PACKING, "packing"),
    (F_BACKEND, "backend"),
    (F_PRUNING, "pruning"),
];

fn comparator_tag(c: Comparator) -> u64 {
    match c {
        Comparator::Yao => 0,
        Comparator::Ideal => 1,
        Comparator::Dgk => 2,
    }
}

fn selection_tag(s: SelectionMethod) -> u64 {
    match s {
        SelectionMethod::RepeatedMin => 0,
        SelectionMethod::QuickSelect => 1,
    }
}

/// The versioned, self-describing handshake frame.
///
/// On the wire a `Hello` is its version (`u32`) followed by a tagged list
/// of `(field id: u8, value: u64)` pairs. The tagged encoding makes the
/// frame self-describing: fields can be added without shifting positions,
/// unknown fields from newer peers are ignored, and a frame from a
/// *different* wire version (including the legacy `Vec<u64>` metadata
/// frame, whose length prefix lands where the version now lives) still
/// decodes far enough to be rejected with a typed
/// [`CoreError::HandshakeMismatch`] on `wire_version` instead of hanging or
/// surfacing a generic decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The sender's [`WIRE_VERSION`].
    pub wire_version: u32,
    fields: Vec<(u8, u64)>,
}

impl Hello {
    /// Builds the handshake frame one participant sends: every public
    /// protocol parameter of `cfg` plus the session-specific mode, record
    /// count, and dimension.
    pub fn for_session(cfg: &ProtocolConfig, mode: Mode, n: usize, dim: usize) -> Self {
        Hello {
            wire_version: WIRE_VERSION,
            fields: vec![
                (F_MODE, mode.tag()),
                (F_RECORDS, n as u64),
                (F_DIM, dim as u64),
                (F_COORD_BOUND, cfg.coord_bound as u64),
                (F_EPS_SQ, cfg.params.eps_sq),
                (F_MIN_PTS, cfg.params.min_pts as u64),
                (F_KEY_BITS, cfg.key_bits as u64),
                (F_COMPARATOR, comparator_tag(cfg.comparator)),
                (F_SELECTION, selection_tag(cfg.selection)),
                (F_MASK_BITS, cfg.mask_bits as u64),
                (F_BATCHING, cfg.batching as u64),
                (F_PACKING, cfg.packing as u64),
                (F_BACKEND, u64::from(cfg.backend.tag())),
                (F_PRUNING, cfg.pruning.tag()),
            ],
        }
    }

    /// Returns a copy advertising `version` instead of [`WIRE_VERSION`].
    /// Interop/testing hook: lets a test (or a future bridge) forge the
    /// frame an older or newer build would send.
    pub fn with_wire_version(mut self, version: u32) -> Self {
        self.wire_version = version;
        self
    }

    /// Returns a copy carrying a session-id field: the id this side
    /// proposes (client preamble) or grants (server). `0` means "assign me
    /// one". The in-session handshake ignores the field entirely — it
    /// exists for the `ppds-server` connection preamble, where one `Hello`
    /// classifies the connection before the protocol handshake proper.
    pub fn with_session_id(mut self, id: u64) -> Self {
        self.fields.retain(|(fid, _)| *fid != F_SESSION_ID);
        self.fields.push((F_SESSION_ID, id));
        self
    }

    /// The value of field `id`, if the sender included it.
    fn field(&self, id: u8) -> Option<u64> {
        self.fields
            .iter()
            .find(|(fid, _)| *fid == id)
            .map(|(_, v)| *v)
    }

    /// The session id the sender proposed or granted, if any (see
    /// [`Hello::with_session_id`]).
    pub fn session_id(&self) -> Option<u64> {
        self.field(F_SESSION_ID)
    }

    /// The protocol family the sender advertised, if present and known.
    pub fn mode(&self) -> Option<Mode> {
        self.field(F_MODE).and_then(Mode::from_tag)
    }

    /// The record count the sender advertised.
    pub fn records(&self) -> Option<u64> {
        self.field(F_RECORDS)
    }

    /// The attribute count the sender advertised (0 = no points).
    pub fn dim(&self) -> Option<u64> {
        self.field(F_DIM)
    }

    /// Whether the sender wants round batching, if advertised.
    pub fn batching(&self) -> Option<bool> {
        self.field(F_BATCHING).map(|v| v != 0)
    }

    /// Whether the sender wants plaintext-slot packing, if advertised.
    pub fn packing(&self) -> Option<bool> {
        self.field(F_PACKING).map(|v| v != 0)
    }

    /// The SMC substrate the sender advertised, if present and known.
    pub fn backend(&self) -> Option<BackendKind> {
        self.field(F_BACKEND)
            .and_then(|v| u8::try_from(v).ok())
            .and_then(BackendKind::from_tag)
    }

    /// The candidate-generation policy the sender advertised, if present
    /// and representable.
    pub fn pruning(&self) -> Option<Pruning> {
        self.field(F_PRUNING).and_then(Pruning::from_tag)
    }

    /// A stable fingerprint of the agreement-relevant preamble content:
    /// the wire version plus every tagged field *except* the
    /// per-connection session id, FNV-1a-hashed in field-id order. Two
    /// preambles with the same fingerprint would negotiate identically, so
    /// a server front-end can cache the outcome of
    /// [`Hello::check_against`] (plus its knob adoption) per fingerprint
    /// and skip re-negotiation for reconnecting clients.
    pub fn negotiation_fingerprint(&self) -> u64 {
        fn fnv(h: u64, byte: u8) -> u64 {
            (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3)
        }
        let mut pairs: Vec<(u8, u64)> = self
            .fields
            .iter()
            .copied()
            .filter(|(id, _)| *id != F_SESSION_ID)
            .collect();
        pairs.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.wire_version.to_le_bytes() {
            h = fnv(h, byte);
        }
        for (id, value) in pairs {
            h = fnv(h, id);
            for byte in value.to_le_bytes() {
                h = fnv(h, byte);
            }
        }
        h
    }

    /// Cross-checks a peer's `Hello` against ours: every agreed field must
    /// be byte-equal, and a version or field disagreement is reported as a
    /// typed [`CoreError::HandshakeMismatch`] naming the field.
    /// `dim_must_match` is false for vertical data (the parties own
    /// different attribute slices); dimension 0 means "this side has no
    /// points" and matches anything.
    ///
    /// This is the check both halves of [`Participant::run`] apply after
    /// exchanging frames; a server front-end applies the same check to the
    /// connection preamble (with its negotiable knobs already adopted into
    /// `self`) so incompatibilities are rejected before a worker is tied up.
    pub fn check_against(&self, theirs: &Hello, dim_must_match: bool) -> Result<(), CoreError> {
        self.check_compatible(theirs, dim_must_match)
    }

    fn check_compatible(&self, theirs: &Hello, dim_must_match: bool) -> Result<(), CoreError> {
        if self.wire_version != theirs.wire_version {
            return Err(CoreError::HandshakeMismatch {
                field: "wire_version",
                ours: u64::from(self.wire_version),
                theirs: u64::from(theirs.wire_version),
            });
        }
        for (id, name) in AGREED_FIELDS {
            let ours = self.field(id).expect("our hello carries every field");
            let Some(peer) = theirs.field(id) else {
                return Err(CoreError::mismatch(format!(
                    "peer handshake omits the {name} field"
                )));
            };
            if ours != peer {
                return Err(CoreError::HandshakeMismatch {
                    field: name,
                    ours,
                    theirs: peer,
                });
            }
        }
        // Record count and dimension are informational (cross-checked per
        // mode after the handshake), but a same-version frame must still
        // carry them: a missing field silently defaulting to 0 would let
        // the protocol start desynchronized and die mid-run with a generic
        // transport error instead of failing here.
        for (id, name) in [(F_RECORDS, "record_count"), (F_DIM, "dimension")] {
            if theirs.field(id).is_none() {
                return Err(CoreError::mismatch(format!(
                    "peer handshake omits the {name} field"
                )));
            }
        }
        if dim_must_match {
            let (ours, peer) = (
                self.field(F_DIM).expect("our hello carries dim"),
                theirs.field(F_DIM).expect("presence checked above"),
            );
            if ours != 0 && peer != 0 && ours != peer {
                return Err(CoreError::HandshakeMismatch {
                    field: "dimension",
                    ours,
                    theirs: peer,
                });
            }
        }
        Ok(())
    }
}

impl WireEncode for Hello {
    fn encode(&self, out: &mut Vec<u8>) {
        self.wire_version.encode(out);
        (self.fields.len() as u32).encode(out);
        for (id, value) in &self.fields {
            id.encode(out);
            value.encode(out);
        }
    }
}

impl WireDecode for Hello {
    /// Lenient by design: the version is read first, and the field list is
    /// parsed best-effort with trailing bytes ignored. A frame from any
    /// other wire version therefore still yields a `Hello` whose version
    /// the handshake can reject by name, rather than a decode error that
    /// hides the real incompatibility.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, TransportError> {
        let wire_version = u32::decode(reader)?;
        let mut fields = Vec::new();
        if let Ok(count) = u32::decode(reader) {
            for _ in 0..count {
                match (u8::decode(reader), u64::decode(reader)) {
                    (Ok(id), Ok(value)) => fields.push((id, value)),
                    _ => break,
                }
            }
        }
        // Consume whatever a foreign version appended so `decode_exact`
        // (and with it `Channel::recv`) does not reject the frame outright.
        let remaining = reader.remaining();
        let _ = reader.take(remaining);
        Ok(Hello {
            wire_version,
            fields,
        })
    }
}

/// Everything one two-party handshake negotiates, shared by all drivers.
pub(crate) struct Session {
    pub my_keypair: Keypair,
    pub peer_pk: PublicKey,
    /// Peer's record count (horizontal) or record count check (vertical).
    pub peer_n: usize,
    /// Peer's attribute count (differs from ours only for vertical data).
    pub peer_dim: usize,
    /// Shared dealer tape for correlated randomness — `Some` exactly when
    /// the sharing backend was negotiated (seeded by XOR of one keyed
    /// contribution from each side, so neither party picks it alone).
    pub tape: Option<DealerTape>,
}

/// What one mode advertises in (and requires of) the handshake.
pub(crate) struct HandshakeProfile {
    pub mode: Mode,
    pub n: usize,
    pub dim: usize,
    pub dim_must_match: bool,
}

/// Exchanges public keys and `Hello` frames, cross-checking all public
/// protocol metadata. Both sides send before either checks, so a mismatch
/// is reported symmetrically (each half names the same offending field).
pub(crate) fn establish<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: Keypair,
    role: Party,
    profile: &HandshakeProfile,
    ctx: &ProtocolContext,
) -> Result<Session, CoreError> {
    let keys_span = trace::span("keys", || chan.metrics());
    let peer_pk = match role {
        Party::Alice => setup::exchange_keys_alice(chan, &my_keypair)?,
        Party::Bob => setup::exchange_keys_bob(chan, &my_keypair)?,
    };
    keys_span.end(|| chan.metrics());
    let hello_span = trace::span("hello", || chan.metrics());
    let mine = Hello::for_session(cfg, profile.mode, profile.n, profile.dim);
    chan.send(&mine)?;
    let theirs: Hello = chan.recv()?;
    mine.check_compatible(&theirs, profile.dim_must_match)?;
    // The sharing backend needs one shared dealer seed; both sides
    // contribute a keyed draw and XOR, so the tape is agreed without either
    // party choosing it unilaterally. Both send before either receives —
    // the exchange cannot deadlock and adds exactly one frame each way.
    let tape = if cfg.backend == BackendKind::Sharing {
        let my_contribution = DealerTape::contribution(ctx);
        chan.send(&my_contribution)?;
        let their_contribution: u64 = chan.recv()?;
        Some(DealerTape::from_contributions(
            my_contribution,
            their_contribution,
        ))
    } else {
        None
    };
    hello_span.end(|| chan.metrics());
    Ok(Session {
        my_keypair,
        peer_pk,
        peer_n: theirs
            .field(F_RECORDS)
            .expect("check_compatible requires the field") as usize,
        peer_dim: theirs
            .field(F_DIM)
            .expect("check_compatible requires the field") as usize,
        tape,
    })
}

/// Running record of one party's leakage, modeled Yao cost, and
/// sharing-backend substitution accounting.
pub(crate) struct SessionLog {
    pub leakage: LeakageLog,
    pub ledger: YaoLedger,
    pub sharing: SharingLedger,
}

impl SessionLog {
    pub(crate) fn new() -> Self {
        SessionLog {
            leakage: LeakageLog::new(),
            ledger: YaoLedger::default(),
            sharing: SharingLedger::default(),
        }
    }
}

/// Per-mode execution context handed to a [`ModeDriver`].
pub(crate) struct ModeContext<'a> {
    pub cfg: &'a ProtocolConfig,
    pub role: Party,
    pub session: &'a Session,
}

/// The shared dispatch every protocol family implements: local validation,
/// handshake profile, post-handshake cross-checks, and the protocol body.
/// `run_two_party` sequences these so the config/batching plumbing lives in
/// exactly one place.
pub(crate) trait ModeDriver {
    /// Local-only validation before anything crosses the wire.
    fn validate(&self, cfg: &ProtocolConfig) -> Result<(), CoreError>;

    /// This driver's handshake advertisement.
    fn profile(&self) -> HandshakeProfile;

    /// Cross-checks after the handshake (e.g. equal record counts).
    fn check_session(&self, cfg: &ProtocolConfig, session: &Session) -> Result<(), CoreError>;

    /// The protocol body: returns this party's clustering. `ctx` is the
    /// session's root [`ProtocolContext`]; the driver narrows it per
    /// protocol step and query instance, so every draw site owns a keyed
    /// substream independent of execution order.
    fn execute<C: Channel>(
        &self,
        chan: &mut C,
        mctx: &ModeContext<'_>,
        ctx: &ProtocolContext,
        log: &mut SessionLog,
    ) -> Result<Clustering, CoreError>;
}

/// Opt-in randomizer precomputation for a session: after the handshake,
/// both session keys (own and peer) get a [`RandomizerPool`] of `capacity`
/// randomizers — prefilled synchronously, then topped up by `fillers`
/// background threads (0 = prefill only) for the lifetime of the protocol
/// body. Every hot-path encryption under either key (protocol `encrypt`
/// calls, DGK re-randomization, packed-word nonces) then consumes pooled
/// `r^n` factors instead of exponentiating inline.
///
/// Trade-off: pooled nonces come from the pool's own streams, so wire
/// *bytes* are no longer reproducible from the session seed (outputs,
/// leakage, and ledgers still are — pinned by the `pooled_sessions_*`
/// integration test). Use for throughput; leave off where transcript
/// reproducibility matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSetup {
    /// Randomizers buffered per key.
    pub capacity: usize,
    /// Background filler threads per key (0 = synchronous prefill only).
    pub fillers: usize,
}

/// Attaches fresh randomizer pools to both session keys (see
/// [`PoolSetup`]); returns the filler guards that keep the background
/// threads alive for the protocol body.
fn attach_pools(
    session: &mut Session,
    setup: PoolSetup,
    ctx: &ProtocolContext,
) -> Vec<FillerHandle> {
    let mut seeds = ctx.narrow("pool").rng();
    let mut guards = Vec::new();
    let mut pooled = |pk: PublicKey| {
        let pool = RandomizerPool::new(pk.clone(), setup.capacity.max(1));
        let mut prefill_rng = StdRng::seed_from_u64(seeds.next_u64());
        pool.prefill(setup.capacity, &mut prefill_rng);
        if setup.fillers > 0 {
            guards.push(pool.spawn_fillers(setup.fillers, seeds.next_u64()));
        }
        pk.with_randomizer_pool(pool)
            .expect("pool was built for this key")
    };
    session.my_keypair.public = pooled(session.my_keypair.public.clone());
    session.peer_pk = pooled(session.peer_pk.clone());
    guards
}

/// Runs one two-party mode end to end on this side of `chan`: validate,
/// establish (generating a keypair from the context's `"keygen"` substream
/// unless one is supplied), cross-check, execute, assemble the outcome.
pub(crate) fn run_two_party<C, D>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    driver: &D,
    role: Party,
    keypair: Option<Keypair>,
    ctx: &ProtocolContext,
) -> Result<SessionOutcome, CoreError>
where
    C: Channel,
    D: ModeDriver,
{
    run_two_party_pooled(chan, cfg, driver, role, keypair, ctx, None)
}

/// [`run_two_party`] with optional randomizer-pool precomputation.
pub(crate) fn run_two_party_pooled<C, D>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    driver: &D,
    role: Party,
    keypair: Option<Keypair>,
    ctx: &ProtocolContext,
    pools: Option<PoolSetup>,
) -> Result<SessionOutcome, CoreError>
where
    C: Channel,
    D: ModeDriver,
{
    driver.validate(cfg)?;
    let keygen_span = trace::span("keygen", || chan.metrics());
    let keypair = match keypair {
        Some(kp) => kp,
        None => Keypair::generate(cfg.key_bits, &mut ctx.narrow("keygen").rng()),
    };
    keygen_span.end(|| chan.metrics());
    let profile = driver.profile();
    let establish_span = trace::span("establish", || chan.metrics());
    let mut session = establish(chan, cfg, keypair, role, &profile, ctx)?;
    driver.check_session(cfg, &session)?;
    establish_span.end(|| chan.metrics());
    let _filler_guards = pools.map(|setup| attach_pools(&mut session, setup, ctx));

    let mut log = SessionLog::new();
    let mctx = ModeContext {
        cfg,
        role,
        session: &session,
    };
    let execute_span = trace::span("execute", || chan.metrics());
    let clustering = driver.execute(chan, &mctx, ctx, &mut log)?;
    execute_span.end(|| chan.metrics());
    let mode = profile.mode;
    let assemble_span = trace::span("assemble", || chan.metrics());
    let outcome = SessionOutcome {
        output: PartyOutput {
            clustering,
            leakage: log.leakage,
            traffic: chan.metrics(),
            yao: log.ledger,
            sharing: log.sharing,
        },
        trace: None,
        meta: SessionMeta {
            wire_version: WIRE_VERSION,
            mode,
            batching: cfg.batching,
            packing: cfg.packing,
            backend: cfg.backend,
            pruning: cfg.pruning,
            peers: vec![PeerInfo {
                id: match role {
                    Party::Alice => 1,
                    Party::Bob => 0,
                },
                n: session.peer_n,
                dim: session.peer_dim,
            }],
        },
    };
    assemble_span.end(|| outcome.output.traffic);
    Ok(outcome)
}

/// One party's private view of the session data — the mode selector of the
/// [`Participant`] API. The variant picks the protocol family; the payload
/// is exactly what that family's legacy driver took.
#[derive(Debug, Clone)]
pub enum PartyData {
    /// Complete records, basic horizontal protocol (Algorithms 3 & 4).
    Horizontal(Vec<Point>),
    /// Complete records, enhanced protocol (Algorithms 7 & 8).
    Enhanced(Vec<Point>),
    /// This party's attribute slice of every record (Algorithms 5 & 6).
    Vertical(Vec<Point>),
    /// This party's cell view: `Some` exactly at owned attributes (§4.4).
    Arbitrary(Vec<Vec<Option<i64>>>),
    /// Complete records for the K-party mesh (run via
    /// [`Participant::run_mesh`]).
    Multiparty(Vec<Point>),
}

impl PartyData {
    /// The protocol family this data selects.
    pub fn mode(&self) -> Mode {
        match self {
            PartyData::Horizontal(_) => Mode::Horizontal,
            PartyData::Enhanced(_) => Mode::Enhanced,
            PartyData::Vertical(_) => Mode::Vertical,
            PartyData::Arbitrary(_) => Mode::Arbitrary,
            PartyData::Multiparty(_) => Mode::Multiparty,
        }
    }

    /// `(record count, dimension)` as this data view advertises them in the
    /// handshake (dimension 0 = no points). A server preamble reuses this
    /// to describe the client's side before the session handshake proper.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            PartyData::Horizontal(points)
            | PartyData::Enhanced(points)
            | PartyData::Multiparty(points) => (points.len(), points.first().map_or(0, Point::dim)),
            PartyData::Vertical(attrs) => (attrs.len(), attrs.first().map_or(1, Point::dim)),
            PartyData::Arbitrary(values) => {
                (values.len(), values.first().map_or(0, |row| row.len()))
            }
        }
    }
}

/// Metadata about one peer session negotiated during the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerInfo {
    /// The peer's party id (role index for two-party sessions: Alice = 0,
    /// Bob = 1; global party id in a mesh).
    pub id: usize,
    /// The peer's advertised record count.
    pub n: usize,
    /// The peer's advertised attribute count (0 = no points).
    pub dim: usize,
}

/// Everything negotiated about a finished session beyond the protocol
/// output itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionMeta {
    /// The handshake wire version both sides agreed on.
    pub wire_version: u32,
    /// The negotiated protocol family.
    pub mode: Mode,
    /// Whether round batching was active (both sides must agree).
    pub batching: bool,
    /// Whether plaintext-slot packing was active (both sides must agree).
    pub packing: bool,
    /// The negotiated SMC substrate (both sides must agree).
    pub backend: BackendKind,
    /// The negotiated candidate-generation policy (both sides must agree).
    pub pruning: Pruning,
    /// One entry per peer session (one for two-party modes, `K − 1` for a
    /// mesh), in peer-id order.
    pub peers: Vec<PeerInfo>,
}

/// A completed session from one participant's perspective: the protocol
/// output plus the negotiated session metadata.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The clustering, leakage log, traffic, and Yao ledger this party
    /// takes away — identical to what the legacy drivers returned.
    pub output: PartyOutput,
    /// Negotiated session metadata.
    pub meta: SessionMeta,
    /// The flight-recorder trace, present iff the participant opted in
    /// with [`Participant::trace`]. Tracing observes the session without
    /// participating: outputs, leakage, ledgers, and wire bytes are
    /// byte-identical with or without it (pinned by `tests/trace_parity.rs`).
    pub trace: Option<SessionTrace>,
}

/// Builder for one party of a clustering session.
///
/// ```no_run
/// use ppdbscan::session::{Participant, PartyData};
/// use ppdbscan::ProtocolConfig;
/// use ppds_dbscan::{DbscanParams, Point};
/// use ppds_smc::Party;
///
/// let cfg = ProtocolConfig::new(DbscanParams { eps_sq: 4, min_pts: 3 }, 10);
/// let points = vec![Point::new(vec![0, 0])];
/// # let mut chan = ppds_transport::duplex().0;
/// let outcome = Participant::new(cfg)
///     .role(Party::Alice)
///     .data(PartyData::Horizontal(points))
///     .seed(7)
///     .run(&mut chan)?;
/// println!("ran {} over wire v{}", outcome.meta.mode, outcome.meta.wire_version);
/// # Ok::<(), ppdbscan::CoreError>(())
/// ```
#[derive(Debug)]
pub struct Participant {
    cfg: ProtocolConfig,
    role: Option<Party>,
    data: Option<PartyData>,
    keypair: Option<Keypair>,
    ctx: Option<ProtocolContext>,
    pools: Option<PoolSetup>,
    recorder: Option<Arc<SpanRecorder>>,
}

impl Participant {
    /// Starts a builder from the publicly agreed protocol configuration.
    pub fn new(cfg: ProtocolConfig) -> Self {
        Participant {
            cfg,
            role: None,
            data: None,
            keypair: None,
            ctx: None,
            pools: None,
            recorder: None,
        }
    }

    /// Turns on the flight recorder for this session: every protocol phase
    /// (handshake, per-query exchanges, the SMC primitives underneath)
    /// records begin/end span edges into `recorder`, each stamped with a
    /// wall-clock time and a channel [`ppds_observe::MetricsSnapshot`]. The
    /// finished trace rides back on [`SessionOutcome::trace`], ready for
    /// [`SessionTrace::rollup`] or Chrome/Perfetto export via
    /// [`SessionTrace::to_chrome_json`].
    ///
    /// Tracing is observational only — protocol outputs, leakage logs, Yao
    /// ledgers, and wire bytes are byte-identical with and without it.
    /// Untraced sessions pay one thread-local read per would-be span.
    pub fn trace(mut self, recorder: Arc<SpanRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Enables randomizer precomputation for this session (see
    /// [`PoolSetup`]): both session keys get a prefilled
    /// [`ppds_paillier::RandomizerPool`], optionally topped up by
    /// background filler threads, so hot-path encryptions collapse to two
    /// modular multiplications when the pool has stock. Protocol outputs,
    /// leakage, and ledgers are unchanged; wire bytes stop being a pure
    /// function of the seed. Two-party sessions only (a mesh node runs
    /// many pairwise sessions and manages its own keys).
    pub fn pooled_randomizers(mut self, capacity: usize, fillers: usize) -> Self {
        self.pools = Some(PoolSetup { capacity, fillers });
        self
    }

    /// Sets this party's role (who sends first in the key exchange, who
    /// queries first in the horizontal protocols). Required for
    /// [`Participant::run`]; ignored by [`Participant::run_mesh`], where
    /// roles are derived from party ids.
    pub fn role(mut self, role: Party) -> Self {
        self.role = Some(role);
        self
    }

    /// Sets this party's private data view, which also selects the
    /// protocol mode. Required.
    pub fn data(mut self, data: PartyData) -> Self {
        self.data = Some(data);
        self
    }

    /// The publicly agreed protocol configuration this builder carries.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// This party's data view, if one was set — what a connection preamble
    /// needs to describe the session (mode, record count, dimension)
    /// without consuming the builder.
    pub fn party_data(&self) -> Option<&PartyData> {
        self.data.as_ref()
    }

    /// Supplies a pre-generated Paillier keypair instead of generating one
    /// from the session RNG — a mesh node reuses one keypair across all of
    /// its pairwise sessions, and a long-lived deployment amortizes keygen.
    ///
    /// # Errors
    /// Rejects a keypair whose modulus size disagrees with
    /// `cfg.key_bits` — the handshake advertises the configured size, so a
    /// mismatched keypair would break the peer's expectations mid-protocol.
    pub fn keypair(mut self, keypair: Keypair) -> Result<Self, CoreError> {
        let bits = keypair.public.bits();
        if bits != self.cfg.key_bits {
            return Err(CoreError::config(format!(
                "keypair has {bits}-bit modulus but cfg.key_bits = {}",
                self.cfg.key_bits
            )));
        }
        self.keypair = Some(keypair);
        Ok(self)
    }

    /// Seeds the session's deterministic randomness. The seed becomes the
    /// root of a [`ProtocolContext`] derivation tree (session seed → mode
    /// → protocol step → query instance → record), so every draw site owns
    /// a keyed substream that is independent of execution order — batched,
    /// unbatched, and parallel evaluations of the same session draw
    /// byte-identical randomness. Equivalent to
    /// `rng(StdRng::seed_from_u64(seed))`.
    pub fn seed(self, seed: u64) -> Self {
        self.rng(StdRng::seed_from_u64(seed))
    }

    /// Supplies the session randomness as a generator: one `next_u64` draw
    /// becomes the context root seed (see [`Participant::seed`]). Kept so
    /// `StdRng`-valued call sites (the legacy drivers, the bench harness)
    /// stay source-compatible; legacy and typed entry points derive the
    /// same context from the same generator, so their outputs remain
    /// byte-identical (pinned by `tests/api_parity.rs`).
    pub fn rng(mut self, mut rng: StdRng) -> Self {
        self.ctx = Some(ProtocolContext::from_rng(&mut rng));
        self
    }

    /// Supplies the session's [`ProtocolContext`] root directly.
    pub fn context(mut self, ctx: ProtocolContext) -> Self {
        self.ctx = Some(ctx);
        self
    }

    fn take_ctx(ctx: Option<ProtocolContext>) -> Result<ProtocolContext, CoreError> {
        ctx.ok_or_else(|| {
            CoreError::config("participant needs a randomness source: call .seed(..) or .rng(..)")
        })
    }

    /// Runs this participant's half of a two-party session over `chan`.
    ///
    /// # Errors
    /// [`CoreError::Config`] if the builder is incomplete or the local
    /// configuration is unusable, [`CoreError::HandshakeMismatch`] if the
    /// peer disagrees on any negotiated field, and the underlying protocol
    /// errors otherwise.
    pub fn run<C: Channel>(self, chan: &mut C) -> Result<SessionOutcome, CoreError> {
        let role = self
            .role
            .ok_or_else(|| CoreError::config("participant needs a role: call .role(..)"))?;
        let data = self
            .data
            .ok_or_else(|| CoreError::config("participant needs data: call .data(..)"))?;
        let ctx = Self::take_ctx(self.ctx)?;
        let cfg = self.cfg;
        let recorder = self.recorder;
        let guard = recorder
            .clone()
            .map(|rec| trace::install(rec as Arc<dyn TraceSink>));
        let result = match &data {
            PartyData::Horizontal(points) => run_two_party_pooled(
                chan,
                &cfg,
                &crate::horizontal::HorizontalDriver { points },
                role,
                self.keypair,
                &ctx,
                self.pools,
            ),
            PartyData::Enhanced(points) => run_two_party_pooled(
                chan,
                &cfg,
                &crate::enhanced::EnhancedDriver { points },
                role,
                self.keypair,
                &ctx,
                self.pools,
            ),
            PartyData::Vertical(attrs) => run_two_party_pooled(
                chan,
                &cfg,
                &crate::vertical::VerticalDriver { attrs },
                role,
                self.keypair,
                &ctx,
                self.pools,
            ),
            PartyData::Arbitrary(values) => run_two_party_pooled(
                chan,
                &cfg,
                &crate::arbitrary::ArbitraryDriver { values },
                role,
                self.keypair,
                &ctx,
                self.pools,
            ),
            PartyData::Multiparty(_) => Err(CoreError::config(
                "multiparty data runs over a mesh: call .run_mesh(..) instead of .run(..)",
            )),
        };
        drop(guard);
        let mut outcome = result?;
        if let Some(rec) = recorder {
            outcome.trace = Some(rec.finish());
        }
        Ok(outcome)
    }

    /// Runs this participant as node `my_id` of a `k_parties`-node mesh.
    /// `peers` holds one channel per other party, tagged with that party's
    /// global id. Requires [`PartyData::Multiparty`] data; the node's
    /// keypair (supplied or generated) is reused across all pairwise
    /// sessions.
    pub fn run_mesh<C: Channel>(
        self,
        peers: &mut [(usize, C)],
        my_id: usize,
        k_parties: usize,
    ) -> Result<SessionOutcome, CoreError> {
        let data = self
            .data
            .ok_or_else(|| CoreError::config("participant needs data: call .data(..)"))?;
        let PartyData::Multiparty(points) = data else {
            return Err(CoreError::config(
                "run_mesh needs PartyData::Multiparty; two-party data runs via .run(..)",
            ));
        };
        let ctx = Self::take_ctx(self.ctx)?;
        let recorder = self.recorder;
        let guard = recorder
            .clone()
            .map(|rec| trace::install(rec as Arc<dyn TraceSink>));
        let result = crate::multiparty::run_mesh_node(
            peers,
            my_id,
            k_parties,
            &self.cfg,
            &points,
            self.keypair,
            &ctx,
        );
        drop(guard);
        let mut outcome = result?;
        if let Some(rec) = recorder {
            outcome.trace = Some(rec.finish());
        }
        Ok(outcome)
    }
}

/// Runs two participants against each other over an in-memory duplex pair
/// (two scoped threads), returning both outcomes `(first, second)`.
///
/// The participants must be two halves of the same two-party session —
/// complementary roles, compatible data. This is the in-process conductor
/// the deprecated `run_*_pair` helpers and the engine's
/// [`crate::driver::run_session`] are built on; for a real deployment, run
/// each [`Participant`] in its own process over a
/// [`ppds_transport::tcp::TcpChannel`].
pub fn run_participants(
    first: Participant,
    second: Participant,
) -> Result<(SessionOutcome, SessionOutcome), CoreError> {
    run_pair(
        move |mut chan: MemoryChannel| first.run(&mut chan),
        move |mut chan: MemoryChannel| second.run(&mut chan),
    )
}

/// [`run_participants`] for the common case: Alice's and Bob's data views
/// with explicit RNG streams, returning the bare [`PartyOutput`]s. This is
/// the one shared implementation behind the deprecated `run_*_pair`
/// wrappers, the bench harness, and the integration-test helpers.
pub fn run_data_pair(
    cfg: &ProtocolConfig,
    alice: PartyData,
    bob: PartyData,
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    let (a, b) = run_participants(
        Participant::new(*cfg)
            .role(Party::Alice)
            .data(alice)
            .rng(rng_a),
        Participant::new(*cfg).role(Party::Bob).data(bob).rng(rng_b),
    )?;
    Ok((a.output, b.output))
}

/// Runs all `k` parties of a multiparty session on threads over an
/// in-memory full mesh; returns one [`SessionOutcome`] per party in
/// party-id order. Each node's RNG stream derives from
/// `seed + party_id`, matching the legacy conductor seed-for-seed.
pub fn run_mesh_local(
    cfg: &ProtocolConfig,
    party_points: &[Vec<Point>],
    seed: u64,
) -> Result<Vec<SessionOutcome>, CoreError> {
    let k = party_points.len();
    if k < 2 {
        return Err(CoreError::config(
            "multiparty session needs at least 2 parties",
        ));
    }

    // Build the mesh: channels[i] collects (peer_id, endpoint) for party i.
    let mut channels: Vec<Vec<(usize, MemoryChannel)>> = (0..k).map(|_| Vec::new()).collect();
    for i in 0..k {
        for j in i + 1..k {
            let (a, b) = duplex();
            channels[i].push((j, a));
            channels[j].push((i, b));
        }
    }

    let mut outcomes: Vec<Option<Result<SessionOutcome, CoreError>>> =
        (0..k).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (my_id, (mut peers, points)) in channels.drain(..).zip(party_points.iter()).enumerate()
        {
            let participant = Participant::new(*cfg)
                .data(PartyData::Multiparty(points.clone()))
                .seed(seed.wrapping_add(my_id as u64));
            handles.push(scope.spawn(move || participant.run_mesh(&mut peers, my_id, k)));
        }
        for (i, handle) in handles.into_iter().enumerate() {
            outcomes[i] = Some(
                handle
                    .join()
                    .unwrap_or(Err(CoreError::PartyPanicked("multiparty node"))),
            );
        }
    });
    outcomes
        .into_iter()
        .map(|slot| slot.expect("every party joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppds_dbscan::DbscanParams;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            10,
        )
    }

    #[test]
    fn hello_roundtrips_and_checks() {
        let mine = Hello::for_session(&cfg(), Mode::Horizontal, 3, 2);
        let bytes = mine.encode_to_vec();
        let back = Hello::decode_exact(&bytes).unwrap();
        assert_eq!(back, mine);
        assert!(mine.check_compatible(&back, true).is_ok());
    }

    #[test]
    fn hello_session_id_rides_without_affecting_agreement() {
        let mine = Hello::for_session(&cfg(), Mode::Vertical, 5, 2);
        assert_eq!(mine.session_id(), None);
        let tagged = mine.clone().with_session_id(42);
        assert_eq!(tagged.session_id(), Some(42));
        // Replacing an existing id keeps exactly one field.
        let retagged = tagged.clone().with_session_id(7);
        assert_eq!(retagged.session_id(), Some(7));
        // The id is not an agreed field: frames with and without it match.
        assert!(mine.check_against(&tagged, false).is_ok());
        assert!(tagged.check_against(&mine, false).is_ok());
        // And it survives the wire.
        let back = Hello::decode_exact(&tagged.encode_to_vec()).unwrap();
        assert_eq!(back.session_id(), Some(42));
        assert_eq!(back.mode(), Some(Mode::Vertical));
        assert_eq!(back.records(), Some(5));
        assert_eq!(back.dim(), Some(2));
        assert_eq!(back.batching(), Some(false));
        assert_eq!(back.packing(), Some(false));
        assert_eq!(back.backend(), Some(BackendKind::Paillier));
        assert_eq!(back.pruning(), Some(Pruning::Exhaustive));
    }

    #[test]
    fn hello_carries_the_pruning_policy() {
        let pruned = cfg().with_pruning(Pruning::Grid { coarseness: 2 });
        let mine = Hello::for_session(&pruned, Mode::Horizontal, 3, 2);
        let back = Hello::decode_exact(&mine.encode_to_vec()).unwrap();
        assert_eq!(back.pruning(), Some(Pruning::Grid { coarseness: 2 }));
        let theirs = Hello::for_session(&cfg(), Mode::Horizontal, 3, 2);
        match mine.check_compatible(&theirs, true).unwrap_err() {
            CoreError::HandshakeMismatch {
                field,
                ours,
                theirs,
            } => {
                assert_eq!(field, "pruning");
                assert_eq!((ours, theirs), (2, 0));
            }
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn negotiation_fingerprint_ignores_session_id_only() {
        let mine = Hello::for_session(&cfg(), Mode::Horizontal, 3, 2);
        assert_eq!(
            mine.negotiation_fingerprint(),
            mine.clone().with_session_id(42).negotiation_fingerprint(),
            "per-connection session ids never change the fingerprint"
        );
        let pruned = Hello::for_session(
            &cfg().with_pruning(Pruning::Grid { coarseness: 1 }),
            Mode::Horizontal,
            3,
            2,
        );
        assert_ne!(
            mine.negotiation_fingerprint(),
            pruned.negotiation_fingerprint(),
            "any agreement-relevant change re-negotiates"
        );
    }

    #[test]
    fn party_data_shape_matches_driver_profiles() {
        use ppds_dbscan::Point;
        let pts = vec![Point::new(vec![0, 0]), Point::new(vec![1, 2])];
        assert_eq!(PartyData::Horizontal(pts.clone()).shape(), (2, 2));
        assert_eq!(PartyData::Enhanced(pts.clone()).shape(), (2, 2));
        assert_eq!(PartyData::Multiparty(pts.clone()).shape(), (2, 2));
        assert_eq!(PartyData::Vertical(pts).shape(), (2, 2));
        assert_eq!(PartyData::Vertical(vec![]).shape(), (0, 1));
        assert_eq!(
            PartyData::Arbitrary(vec![vec![Some(1), None, Some(3)]]).shape(),
            (1, 3)
        );
    }

    #[test]
    fn hello_rejects_foreign_wire_version_by_name() {
        let mine = Hello::for_session(&cfg(), Mode::Horizontal, 3, 2);
        let old = mine.clone().with_wire_version(1);
        let err = mine.check_compatible(&old, true).unwrap_err();
        match err {
            CoreError::HandshakeMismatch {
                field,
                ours,
                theirs,
            } => {
                assert_eq!(field, "wire_version");
                assert_eq!(ours, u64::from(WIRE_VERSION));
                assert_eq!(theirs, 1);
            }
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn hello_survives_legacy_meta_frame_bytes() {
        // The legacy handshake sent Vec<u64>: a u32 length prefix (11) then
        // the values. Decoding those bytes as Hello must not error — it
        // must yield a frame whose wire_version (= 11) the checker rejects
        // by name.
        let legacy: Vec<u64> = vec![1, 3, 2, 10, 4, 2, 256, 1, 0, 20, 0];
        let bytes = legacy.encode_to_vec();
        let decoded = Hello::decode_exact(&bytes).unwrap();
        assert_eq!(decoded.wire_version, 11);
        let mine = Hello::for_session(&cfg(), Mode::Horizontal, 3, 2);
        match mine.check_compatible(&decoded, true).unwrap_err() {
            CoreError::HandshakeMismatch { field, theirs, .. } => {
                assert_eq!(field, "wire_version");
                assert_eq!(theirs, 11);
            }
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn hello_field_disagreements_name_the_field() {
        let mine = Hello::for_session(&cfg(), Mode::Horizontal, 3, 2);
        let mut other_cfg = cfg();
        other_cfg.params.eps_sq = 9;
        let theirs = Hello::for_session(&other_cfg, Mode::Horizontal, 3, 2);
        match mine.check_compatible(&theirs, true).unwrap_err() {
            CoreError::HandshakeMismatch {
                field,
                ours,
                theirs,
            } => {
                assert_eq!(field, "eps_sq");
                assert_eq!((ours, theirs), (4, 9));
            }
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }

        let theirs = Hello::for_session(&cfg().with_batching(true), Mode::Horizontal, 3, 2);
        match mine.check_compatible(&theirs, true).unwrap_err() {
            CoreError::HandshakeMismatch { field, .. } => assert_eq!(field, "batching"),
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }

        let theirs = Hello::for_session(
            &cfg().with_backend(BackendKind::Sharing),
            Mode::Horizontal,
            3,
            2,
        );
        match mine.check_compatible(&theirs, true).unwrap_err() {
            CoreError::HandshakeMismatch {
                field,
                ours,
                theirs,
            } => {
                assert_eq!(field, "backend");
                assert_eq!((ours, theirs), (0, 1));
            }
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn dimension_zero_matches_anything() {
        let mine = Hello::for_session(&cfg(), Mode::Horizontal, 3, 2);
        let empty = Hello::for_session(&cfg(), Mode::Horizontal, 0, 0);
        assert!(mine.check_compatible(&empty, true).is_ok());
        let three_d = Hello::for_session(&cfg(), Mode::Horizontal, 3, 3);
        assert!(mine.check_compatible(&three_d, true).is_err());
        assert!(mine.check_compatible(&three_d, false).is_ok());
    }

    #[test]
    fn builder_reports_missing_pieces() {
        let (mut chan, _peer) = duplex();
        let err = Participant::new(cfg()).run(&mut chan).unwrap_err();
        assert!(matches!(err, CoreError::Config(_)), "{err}");
        let err = Participant::new(cfg())
            .role(Party::Alice)
            .data(PartyData::Horizontal(vec![]))
            .run(&mut chan)
            .unwrap_err();
        assert!(err.to_string().contains("randomness"), "{err}");
    }

    #[test]
    fn keypair_bits_validated_against_config() {
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let kp = Keypair::generate(128, &mut rng);
        let err = Participant::new(cfg()).keypair(kp).unwrap_err();
        assert!(matches!(err, CoreError::Config(_)), "{err}");
        let kp256 = Keypair::generate(256, &mut rng);
        assert!(Participant::new(cfg()).keypair(kp256).is_ok());
    }

    #[test]
    fn two_party_data_rejected_by_run_mesh_and_vice_versa() {
        let err = Participant::new(cfg())
            .data(PartyData::Horizontal(vec![]))
            .seed(1)
            .run_mesh::<MemoryChannel>(&mut [], 0, 2)
            .unwrap_err();
        assert!(err.to_string().contains("run_mesh needs"), "{err}");
        let (mut chan, _peer) = duplex();
        let err = Participant::new(cfg())
            .role(Party::Alice)
            .data(PartyData::Multiparty(vec![]))
            .seed(1)
            .run(&mut chan)
            .unwrap_err();
        assert!(err.to_string().contains("mesh"), "{err}");
    }
}
