//! Protocol configuration shared (publicly) by both parties.

use crate::error::CoreError;
use ppds_dbscan::{DbscanParams, Pruning};
use ppds_smc::compare::Comparator;
use ppds_smc::kth::SelectionMethod;
use ppds_smc::millionaires;
use ppds_smc::BackendKind;

/// Everything both parties must agree on before a run. All of it is public
/// metadata in the paper's model: the density parameters (Eps, MinPts), the
/// data schema (dimension, lattice bound), and the cryptographic knobs.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolConfig {
    /// Density parameters (`Eps²`, `MinPts`).
    pub params: DbscanParams,
    /// Agreed bound on coordinate magnitude: every attribute value lies in
    /// `[-coord_bound, coord_bound]`. Determines the Yao comparison domain.
    pub coord_bound: i64,
    /// Paillier modulus size in bits. 256 keeps tests fast; use ≥ 2048 for
    /// anything resembling deployment.
    pub key_bits: usize,
    /// Secure-comparison backend (faithful Yao vs ideal-functionality with
    /// modeled accounting; see `ppds-smc::compare`).
    pub comparator: Comparator,
    /// k-th-order-statistic algorithm for the enhanced protocol.
    pub selection: SelectionMethod,
    /// Statistical-hiding exponent σ: masks are drawn from ranges scaled by
    /// `2^σ` above the values they hide. Larger σ hides better but inflates
    /// the share-comparison domain by the same factor (which the faithful
    /// Yao backend cannot afford — `validate` enforces the cap).
    pub mask_bits: u32,
    /// Round batching: when `true`, every neighborhood query packs all of
    /// its candidate comparisons (and their multiplication stages) into one
    /// wire frame per protocol message instead of one round-trip per
    /// comparison, collapsing wire rounds from `O(candidates)` to `O(1)`
    /// per query. Outputs, leakage, and comparison counts are identical to
    /// the unbatched run under the same seeds (pinned by the
    /// `batching_parity` integration tests); only the framing changes. See
    /// DESIGN.md §7.
    pub batching: bool,
    /// Plaintext-slot packing: when `true`, the ciphertext-heavy *response*
    /// legs ride packed Paillier words (`ppds_paillier::SlotLayout`)
    /// instead of one ciphertext per value — the DGK masked verdict vector
    /// ships `⌈ℓ/capacity⌉` words per comparison, masked-product and
    /// masked-distance replies pack `capacity` slots per word, and the
    /// Ideal comparator pads its verdict-sized message to the packed
    /// transcript size — cutting response bytes and the keyholder's
    /// decryption count by roughly the packing factor (~20× at 1024-bit
    /// keys with 48-bit slots). Orthogonal to `batching` (any of the four
    /// combinations runs); labels, leakage, and the Yao ledger are
    /// byte-identical to unpacked runs under the same seeds (pinned by the
    /// `packing_parity` integration tests). Both parties must agree — the
    /// handshake rejects a mismatch by name. See DESIGN.md §10.
    pub packing: bool,
    /// Cryptographic substrate for the three SMC workhorses (comparison /
    /// share-comparison, masked multiplication folds, masked dot products):
    /// [`BackendKind::Paillier`] runs the paper's homomorphic protocols;
    /// [`BackendKind::Sharing`] substitutes additive-sharing equivalents
    /// over `Z_2^64` (Beaver triples, masked opens) with the same driver
    /// dataflow and byte-identical labels/leakage, trading ciphertexts for
    /// 8-byte field elements. Both parties must agree — the handshake
    /// rejects a mismatch by name. See DESIGN.md §14.
    pub backend: BackendKind,
    /// Candidate-generation policy: [`Pruning::Exhaustive`] runs the
    /// paper's all-pairs neighborhood evaluation; [`Pruning::Grid`]
    /// restricts secure comparisons to grid-derived candidate sets
    /// (ε-cell + 3^d neighbors on locally held coordinates, coarse public
    /// bands on shared ones), producing byte-identical labels with
    /// strictly fewer secure comparisons, at the price of explicitly
    /// ledgered band/cardinality disclosures (`pruning_*` leakage
    /// events). Both parties must agree — the handshake rejects a
    /// mismatch by name. See DESIGN.md §15.
    pub pruning: Pruning,
}

impl ProtocolConfig {
    /// A config with the defaults used throughout the examples: 256-bit
    /// keys, the Ideal comparator, repeated-minimum selection, σ = 20.
    pub fn new(params: DbscanParams, coord_bound: i64) -> Self {
        ProtocolConfig {
            params,
            coord_bound,
            key_bits: 256,
            comparator: Comparator::Ideal,
            selection: SelectionMethod::RepeatedMin,
            mask_bits: 20,
            batching: false,
            packing: false,
            backend: BackendKind::Paillier,
            pruning: Pruning::Exhaustive,
        }
    }

    /// Returns a copy with round batching switched on or off (both parties
    /// must agree; the handshake rejects a mismatch).
    pub fn with_batching(self, batching: bool) -> Self {
        ProtocolConfig { batching, ..self }
    }

    /// Returns a copy with plaintext-slot packing switched on or off (both
    /// parties must agree; the handshake rejects a mismatch). See
    /// [`ProtocolConfig::packing`].
    pub fn with_packing(self, packing: bool) -> Self {
        ProtocolConfig { packing, ..self }
    }

    /// Returns a copy running on the given SMC substrate (both parties must
    /// agree; the handshake rejects a mismatch). See
    /// [`ProtocolConfig::backend`].
    pub fn with_backend(self, backend: BackendKind) -> Self {
        ProtocolConfig { backend, ..self }
    }

    /// Returns a copy with the given candidate-generation policy (both
    /// parties must agree; the handshake rejects a mismatch). See
    /// [`ProtocolConfig::pruning`].
    pub fn with_pruning(self, pruning: Pruning) -> Self {
        ProtocolConfig { pruning, ..self }
    }

    /// Same defaults but with the faithful Yao comparator and σ = 2 (the
    /// comparator's O(n0) cost forces small domains; see DESIGN.md §3).
    pub fn new_with_yao(params: DbscanParams, coord_bound: i64) -> Self {
        ProtocolConfig {
            comparator: Comparator::Yao,
            mask_bits: 2,
            ..Self::new(params, coord_bound)
        }
    }

    /// Same defaults but with the `O(log n0)` bitwise DGK comparator — a
    /// fully cryptographic backend that stays tractable even on the
    /// enhanced protocol's `2^σ`-wide share domains.
    pub fn new_with_dgk(params: DbscanParams, coord_bound: i64) -> Self {
        ProtocolConfig {
            comparator: Comparator::Dgk,
            ..Self::new(params, coord_bound)
        }
    }

    /// Checks internal consistency for data of dimension `dim`.
    pub fn validate(&self, dim: usize) -> Result<(), CoreError> {
        if self.params.min_pts == 0 {
            return Err(CoreError::config("MinPts must be at least 1"));
        }
        if self.coord_bound <= 0 {
            return Err(CoreError::config("coordinate bound must be positive"));
        }
        if dim == 0 {
            return Err(CoreError::config("points need at least one dimension"));
        }
        if let Pruning::Grid { coarseness } = self.pruning {
            if coarseness == 0 {
                return Err(CoreError::config(
                    "grid pruning needs a band coarseness of at least 1",
                ));
            }
            if self.params.eps_sq == 0 {
                return Err(CoreError::config(
                    "grid pruning needs a positive Eps (band width would be zero)",
                ));
            }
        }
        let max_d = self.max_dist_sq(dim);
        if self.params.eps_sq > max_d {
            return Err(CoreError::config(format!(
                "Eps² = {} exceeds the maximum possible squared distance {max_d}",
                self.params.eps_sq
            )));
        }
        // Share values u = dist² + v must fit i64 with headroom for the
        // comparison domain (|diff| ≤ D + 2V).
        let v_bound = self.enhanced_mask_bound(dim);
        let span = (max_d as i128) + 2 * (v_bound as i128) + self.params.eps_sq as i128 + 2;
        if span > i64::MAX as i128 / 2 {
            return Err(CoreError::config(format!(
                "mask_bits = {} overflows the i64 share domain (span 2^{:.0})",
                self.mask_bits,
                (span as f64).log2()
            )));
        }
        if self.comparator == Comparator::Yao {
            let n0 = crate::domain::enhanced_share_domain(self, dim).n0();
            if n0 > millionaires::MAX_YAO_DOMAIN {
                return Err(CoreError::config(format!(
                    "faithful Yao comparator cannot handle n0 = {n0} (cap {}); \
                     lower mask_bits/coord_bound or use Comparator::Ideal",
                    millionaires::MAX_YAO_DOMAIN
                )));
            }
        }
        if self.packing
            && (crate::domain::mul_response_packing(self, dim).is_none()
                || crate::domain::dot_response_packing(self, dim).is_none())
        {
            return Err(CoreError::config(format!(
                "key_bits = {} cannot fit one packed response slot for this \
                 coord_bound/mask_bits; raise key_bits or disable packing",
                self.key_bits
            )));
        }
        Ok(())
    }

    /// Maximum possible squared distance on this config's lattice.
    pub fn max_dist_sq(&self, dim: usize) -> u64 {
        ppds_dbscan::point::max_dist_sq(dim, self.coord_bound)
    }

    /// Mask bound `V = Dmax · 2^σ` for the enhanced protocol's distance
    /// shares.
    pub fn enhanced_mask_bound(&self, dim: usize) -> u64 {
        self.max_dist_sq(dim)
            .saturating_mul(1u64 << self.mask_bits.min(40))
    }
}

/// Running account of the faithful-Yao cost of every secure comparison a
/// party performed, whether it ran the real protocol (bytes also appear in
/// the channel metrics) or the Ideal backend (bytes are modeled).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct YaoLedger {
    /// Number of secure comparisons executed.
    pub comparisons: u64,
    /// Total modeled YMPP traffic (payload + framing) in bytes.
    pub modeled_bytes: u64,
    /// Total Paillier decryptions the faithful protocol performs (n0 each).
    pub modeled_decryptions: u64,
}

impl YaoLedger {
    /// Records one comparison over a domain of size `n0` under `key_bits`.
    pub fn record(&mut self, key_bits: usize, n0: u64) {
        let (m1, m2, m3) = millionaires::modeled_message_sizes(key_bits, n0);
        self.comparisons += 1;
        self.modeled_bytes += m1 + m2 + m3 + 3 * ppds_transport::FRAME_OVERHEAD_BYTES;
        self.modeled_decryptions += n0;
    }

    /// Merges another ledger into this one.
    pub fn absorb(&mut self, other: YaoLedger) {
        self.comparisons += other.comparisons;
        self.modeled_bytes += other.modeled_bytes;
        self.modeled_decryptions += other.modeled_decryptions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eps_sq: u64, min_pts: usize) -> DbscanParams {
        DbscanParams { eps_sq, min_pts }
    }

    #[test]
    fn default_config_validates() {
        let cfg = ProtocolConfig::new(params(25, 4), 100);
        assert!(cfg.validate(2).is_ok());
        assert!(!cfg.batching, "batching defaults off (reference mode)");
        assert!(cfg.with_batching(true).batching);
        assert!(cfg.with_batching(true).validate(2).is_ok());
        assert_eq!(
            cfg.backend,
            BackendKind::Paillier,
            "Paillier is the default"
        );
        let sharing = cfg.with_backend(BackendKind::Sharing);
        assert_eq!(sharing.backend, BackendKind::Sharing);
        assert!(sharing.validate(2).is_ok());
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(ProtocolConfig::new(params(25, 0), 100).validate(2).is_err());
        assert!(ProtocolConfig::new(params(25, 4), 0).validate(2).is_err());
        assert!(ProtocolConfig::new(params(25, 4), 100).validate(0).is_err());
    }

    #[test]
    fn pruning_knob_validates() {
        let cfg = ProtocolConfig::new(params(25, 4), 100);
        assert_eq!(
            cfg.pruning,
            Pruning::Exhaustive,
            "exhaustive is the default"
        );
        let pruned = cfg.with_pruning(Pruning::Grid { coarseness: 1 });
        assert_eq!(pruned.pruning, Pruning::Grid { coarseness: 1 });
        assert!(pruned.validate(2).is_ok());
        assert!(
            cfg.with_pruning(Pruning::Grid { coarseness: 0 })
                .validate(2)
                .is_err(),
            "zero coarseness must be rejected"
        );
        let mut zero_eps = pruned;
        zero_eps.params.eps_sq = 0;
        assert!(zero_eps.validate(2).is_err(), "zero radius cannot band");
    }

    #[test]
    fn rejects_eps_beyond_lattice() {
        let cfg = ProtocolConfig::new(params(1_000_000, 4), 10);
        // max dist² in 2-D with bound 10 is 800.
        assert!(cfg.validate(2).is_err());
    }

    #[test]
    fn yao_comparator_rejects_big_mask_domains() {
        let mut cfg = ProtocolConfig::new_with_yao(params(25, 4), 50);
        assert!(cfg.validate(2).is_ok());
        cfg.mask_bits = 24;
        assert!(cfg.validate(2).is_err());
    }

    #[test]
    fn huge_masks_rejected_for_share_overflow() {
        let mut cfg = ProtocolConfig::new(params(25, 4), 1 << 20);
        cfg.mask_bits = 40;
        assert!(cfg.validate(8).is_err());
    }

    #[test]
    fn ledger_accumulates() {
        let mut ledger = YaoLedger::default();
        ledger.record(256, 100);
        ledger.record(256, 100);
        assert_eq!(ledger.comparisons, 2);
        assert_eq!(ledger.modeled_decryptions, 200);
        assert!(ledger.modeled_bytes > 2 * 100 * (256 / 2 / 8) as u64);
        let mut other = YaoLedger::default();
        other.record(256, 10);
        ledger.absorb(other);
        assert_eq!(ledger.comparisons, 3);
    }
}
