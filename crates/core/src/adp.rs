//! The arbitrary-partition distance protocol (§4.4).
//!
//! For a record pair `(x, y)` under arbitrary per-cell ownership, the
//! squared distance decomposes over three public attribute classes:
//!
//! * `V_A` — attributes where Alice owns both `x_k` and `y_k`: she sums
//!   `(x_k − y_k)²` locally;
//! * `V_B` — symmetric for Bob;
//! * `H` — attributes where the endpoints are split across parties:
//!   `(x_k − y_k)² = x_k² − 2·x_k·y_k + y_k²`; the squares stay local and
//!   the cross terms go through the Multiplication Protocol with Bob as
//!   keyholder and Alice blinding with zero-sum `r_k` — exactly the HDP
//!   treatment the paper prescribes ("the horizontally partitioned data
//!   could be processed using the Protocol HDP").
//!
//! One Yao comparison then decides
//! `V_A + Σ_H a_k²  ≤  Eps² − V_B − Σ_H b_k² + 2·Σ_H a_k·b_k`,
//! which is `dist²(x, y) ≤ Eps²`.
//!
//! Both the multiplication stage and the comparison dispatch through the
//! session's [`SmcBackend`], so the same dataflow runs over Paillier
//! ciphertexts or 8-byte ring shares (DESIGN.md §14).

use crate::config::{ProtocolConfig, YaoLedger};
use crate::domain::adp_domain;
use ppds_smc::compare::CmpOp;
use ppds_smc::{Party, ProtocolContext, SharingLedger, SmcBackend, SmcError};
use ppds_transport::Channel;

/// One party's view of a record pair: its own values (`Some`) per
/// attribute, for records `x` and `y`.
#[derive(Debug, Clone, Copy)]
pub struct PairView<'a> {
    /// Own values of record `x` (`Some` at owned attributes).
    pub x: &'a [Option<i64>],
    /// Own values of record `y`.
    pub y: &'a [Option<i64>],
}

/// Classified attribute contributions, computed locally by each party from
/// its own view. Ownership is complementary, so the two parties' `split`
/// endpoint lists align index-for-index.
struct LocalParts {
    /// Σ (x_k − y_k)² over attributes where this party owns both endpoints.
    both_owned: i64,
    /// This party's endpoint value per split attribute, ascending `k`.
    split_endpoints: Vec<i64>,
}

fn classify(view: &PairView<'_>) -> LocalParts {
    assert_eq!(view.x.len(), view.y.len(), "views must share the schema");
    let mut both_owned = 0i64;
    let mut split_endpoints = Vec::new();
    for (xk, yk) in view.x.iter().zip(view.y) {
        match (xk, yk) {
            (Some(x), Some(y)) => {
                let d = x - y;
                both_owned += d * d;
            }
            (Some(v), None) | (None, Some(v)) => split_endpoints.push(*v),
            (None, None) => {} // the peer owns both endpoints
        }
    }
    LocalParts {
        both_owned,
        split_endpoints,
    }
}

/// Alice's side of one arbitrary-partition comparison. `ctx` is this
/// pair's record scope and `record` its index in the candidate set (the
/// keys the batched form derives for the same pair). Returns
/// `dist²(x, y) ≤ Eps²`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn adp_compare_alice<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    view: PairView<'_>,
    ctx: &ProtocolContext,
    record: u64,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    let total_dim = view.x.len();
    let parts = classify(&view);
    // Cross terms through the Multiplication Protocol (Bob keyholder).
    if !parts.split_endpoints.is_empty() {
        backend.mul_fold_peer(
            chan,
            std::slice::from_ref(&parts.split_endpoints),
            &[record],
            ctx,
            acct,
        )?;
    }
    let i_val = parts.both_owned + parts.split_endpoints.iter().map(|&v| v * v).sum::<i64>();
    let domain = adp_domain(cfg, total_dim);
    ledger.record(cfg.key_bits, domain.n0());
    backend.compare(
        chan,
        Party::Alice,
        i_val,
        CmpOp::Leq,
        &domain,
        &ctx.narrow("cmp").at(record),
        acct,
    )
}

/// Bob's side of one arbitrary-partition comparison.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn adp_compare_bob<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    view: PairView<'_>,
    ctx: &ProtocolContext,
    record: u64,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    let total_dim = view.x.len();
    let parts = classify(&view);
    let mut cross = 0i64;
    if !parts.split_endpoints.is_empty() {
        cross = backend.mul_fold_keyholder(
            chan,
            std::slice::from_ref(&parts.split_endpoints),
            &[record],
            ctx,
            acct,
        )?[0];
    }
    let squares: i64 = parts.split_endpoints.iter().map(|&v| v * v).sum();
    let j_val = cfg.params.eps_sq as i64 - parts.both_owned - squares + 2 * cross;
    let domain = adp_domain(cfg, total_dim);
    ledger.record(cfg.key_bits, domain.n0());
    backend.compare(
        chan,
        Party::Bob,
        j_val,
        CmpOp::Leq,
        &domain,
        &ctx.narrow("cmp").at(record),
        acct,
    )
}

/// One ADP decision per pair view of a whole candidate set, dispatched on
/// `cfg.batching`: batched mode runs [`adp_compare_batch_alice`],
/// reference mode one [`adp_compare_alice`] ping-pong per pair. Outcomes
/// are identical either way. `records` carries one stable record id per
/// view; randomness is keyed by id, not position, so pruned (sparse)
/// candidate sets draw the same per-pair randomness as exhaustive ones.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn adp_compare_set_alice<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    views: &[PairView<'_>],
    records: &[u64],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    debug_assert_eq!(views.len(), records.len(), "one record id per view");
    if cfg.batching {
        return adp_compare_batch_alice(chan, cfg, backend, views, records, ctx, ledger, acct);
    }
    views
        .iter()
        .zip(records)
        .map(|(&view, &record)| {
            adp_compare_alice(chan, cfg, backend, view, ctx, record, ledger, acct)
        })
        .collect()
}

/// Bob's side of [`adp_compare_set_alice`].
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn adp_compare_set_bob<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    views: &[PairView<'_>],
    records: &[u64],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    debug_assert_eq!(views.len(), records.len(), "one record id per view");
    if cfg.batching {
        return adp_compare_batch_bob(chan, cfg, backend, views, records, ctx, ledger, acct);
    }
    views
        .iter()
        .zip(records)
        .map(|(&view, &record)| {
            adp_compare_bob(chan, cfg, backend, view, ctx, record, ledger, acct)
        })
        .collect()
}

/// Round-batched Alice side: one ADP decision per pair view of a whole
/// candidate set. The multiplication stages of every split pair ride one
/// wire frame each direction (Bob keyholder), then one batched comparison
/// decides all pairs — 5 rounds per neighborhood instead of 5 per pair.
/// Outcome `r[i]` equals [`adp_compare_alice`] on `views[i]`; the per-pair
/// zero-sum masks cancel exactly as in the sequential run.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn adp_compare_batch_alice<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    views: &[PairView<'_>],
    records: &[u64],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    if views.is_empty() {
        return Ok(Vec::new());
    }
    let total_dim = views[0].x.len();
    let parts: Vec<LocalParts> = views.iter().map(classify).collect();
    // Cross terms for every split pair in one batched Multiplication
    // Protocol run. Pairs without split attributes are excluded from the
    // batch, exactly as the sequential protocol skips their exchange —
    // ownership is complementary, so both parties filter identically and
    // logical message counts match the unbatched run. Each group keys its
    // randomness by the pair's *record id*, matching the sequential
    // [`adp_compare_alice`] call for that pair.
    let split_pairs: Vec<usize> = (0..parts.len())
        .filter(|&i| !parts[i].split_endpoints.is_empty())
        .collect();
    if !split_pairs.is_empty() {
        let ys_groups: Vec<Vec<i64>> = split_pairs
            .iter()
            .map(|&i| parts[i].split_endpoints.clone())
            .collect();
        let group_records: Vec<u64> = split_pairs.iter().map(|&i| records[i]).collect();
        backend.mul_fold_peer(chan, &ys_groups, &group_records, ctx, acct)?;
    }
    let domain = adp_domain(cfg, total_dim);
    let i_vals: Vec<i64> = parts
        .iter()
        .map(|p| {
            ledger.record(cfg.key_bits, domain.n0());
            p.both_owned + p.split_endpoints.iter().map(|&v| v * v).sum::<i64>()
        })
        .collect();
    backend.compare_batch(
        chan,
        Party::Alice,
        &i_vals,
        CmpOp::Leq,
        &domain,
        &ctx.narrow("cmp"),
        acct,
    )
}

/// Round-batched Bob side of [`adp_compare_batch_alice`].
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn adp_compare_batch_bob<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    views: &[PairView<'_>],
    records: &[u64],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    if views.is_empty() {
        return Ok(Vec::new());
    }
    let total_dim = views[0].x.len();
    let parts: Vec<LocalParts> = views.iter().map(classify).collect();
    let mut crosses = vec![0i64; parts.len()];
    let split_pairs: Vec<usize> = (0..parts.len())
        .filter(|&i| !parts[i].split_endpoints.is_empty())
        .collect();
    if !split_pairs.is_empty() {
        let xs_groups: Vec<Vec<i64>> = split_pairs
            .iter()
            .map(|&i| parts[i].split_endpoints.clone())
            .collect();
        let group_records: Vec<u64> = split_pairs.iter().map(|&i| records[i]).collect();
        let folds = backend.mul_fold_keyholder(chan, &xs_groups, &group_records, ctx, acct)?;
        for (&i, &fold) in split_pairs.iter().zip(&folds) {
            crosses[i] = fold;
        }
    }
    let domain = adp_domain(cfg, total_dim);
    let j_vals: Vec<i64> = parts
        .iter()
        .zip(&crosses)
        .map(|(p, &cross)| {
            ledger.record(cfg.key_bits, domain.n0());
            let squares: i64 = p.split_endpoints.iter().map(|&v| v * v).sum();
            cfg.params.eps_sq as i64 - p.both_owned - squares + 2 * cross
        })
        .collect();
    backend.compare_batch(
        chan,
        Party::Bob,
        &j_vals,
        CmpOp::Leq,
        &domain,
        &ctx.narrow("cmp"),
        acct,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::paillier_backend;
    use crate::partition::ArbitraryPartition;
    use crate::test_helpers::{ctx, rng};
    use ppds_dbscan::{dist_sq, DbscanParams, Point};
    use ppds_paillier::Keypair;
    use ppds_transport::duplex;
    use std::sync::OnceLock;

    fn alice_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(44)))
    }

    fn bob_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(55)))
    }

    /// Runs one comparison for records x_idx, y_idx of a partition.
    fn run(cfg: ProtocolConfig, part: &ArbitraryPartition, x: usize, y: usize) -> bool {
        let (mut achan, mut bchan) = duplex();
        let ax = part.alice_values[x].clone();
        let ay = part.alice_values[y].clone();
        let dim = ax.len();
        let a = std::thread::spawn(move || {
            let backend = paillier_backend(&cfg, alice_kp(), &bob_kp().public, dim);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            adp_compare_alice(
                &mut achan,
                &cfg,
                &backend,
                PairView { x: &ax, y: &ay },
                &ctx(600 + x as u64),
                0,
                &mut ledger,
                &mut acct,
            )
            .unwrap()
        });
        let backend = paillier_backend(&cfg, bob_kp(), &alice_kp().public, dim);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let bob_view = adp_compare_bob(
            &mut bchan,
            &cfg,
            &backend,
            PairView {
                x: &part.bob_values[x],
                y: &part.bob_values[y],
            },
            &ctx(700 + y as u64),
            0,
            &mut ledger,
            &mut acct,
        )
        .unwrap();
        let alice_view = a.join().unwrap();
        assert_eq!(alice_view, bob_view);
        alice_view
    }

    #[test]
    fn matches_plain_distance_on_random_partitions() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 20,
                min_pts: 2,
            },
            4,
        );
        let records = vec![
            Point::new(vec![1, -2, 3, 0]),
            Point::new(vec![0, -2, 1, 2]),
            Point::new(vec![4, 4, -4, -4]),
        ];
        let mut r = rng(9);
        for trial in 0..5 {
            let part = ArbitraryPartition::random(&mut r, &records);
            for x in 0..records.len() {
                for y in 0..records.len() {
                    if x == y {
                        continue;
                    }
                    let expect = dist_sq(&records[x], &records[y]) <= 20;
                    assert_eq!(run(cfg, &part, x, y), expect, "trial {trial}, ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn batch_matches_plain_distance_in_five_rounds() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 20,
                min_pts: 2,
            },
            4,
        )
        .with_batching(true);
        let records = vec![
            Point::new(vec![1, -2, 3, 0]),
            Point::new(vec![0, -2, 1, 2]),
            Point::new(vec![4, 4, -4, -4]),
            Point::new(vec![0, 0, 0, 0]),
        ];
        let part = ArbitraryPartition::random(&mut rng(77), &records);
        // One batch: record 0 against every other record.
        let ys: Vec<usize> = vec![1, 2, 3];
        let (mut achan, mut bchan) = duplex();
        type OwnedView = (Vec<Option<i64>>, Vec<Option<i64>>);
        let a_views: Vec<OwnedView> = ys
            .iter()
            .map(|&y| (part.alice_values[0].clone(), part.alice_values[y].clone()))
            .collect();
        let a = std::thread::spawn(move || {
            let views: Vec<PairView<'_>> = a_views.iter().map(|(x, y)| PairView { x, y }).collect();
            let backend = paillier_backend(&cfg, alice_kp(), &bob_kp().public, 4);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let out = adp_compare_batch_alice(
                &mut achan,
                &cfg,
                &backend,
                &views,
                &[1, 2, 3],
                &ctx(800),
                &mut ledger,
                &mut acct,
            )
            .unwrap();
            (out, achan.metrics())
        });
        let b_views: Vec<PairView<'_>> = ys
            .iter()
            .map(|&y| PairView {
                x: &part.bob_values[0],
                y: &part.bob_values[y],
            })
            .collect();
        let backend = paillier_backend(&cfg, bob_kp(), &alice_kp().public, 4);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let bob = adp_compare_batch_bob(
            &mut bchan,
            &cfg,
            &backend,
            &b_views,
            &[1, 2, 3],
            &ctx(900),
            &mut ledger,
            &mut acct,
        )
        .unwrap();
        let (alice, metrics) = a.join().unwrap();
        assert_eq!(alice, bob);
        for (pos, &y) in ys.iter().enumerate() {
            let expect = dist_sq(&records[0], &records[y]) <= 20;
            assert_eq!(alice[pos], expect, "pair (0,{y})");
        }
        // 2 rounds of multiplication + 3 of comparison for the whole batch.
        assert!(
            metrics.total_rounds() <= 5,
            "rounds = {}",
            metrics.total_rounds()
        );
    }

    #[test]
    fn sharing_backend_matches_plain_distance() {
        use ppds_smc::{DealerTape, SharingBackend};
        let records = vec![
            Point::new(vec![1, -2, 3, 0]),
            Point::new(vec![0, -2, 1, 2]),
            Point::new(vec![4, 4, -4, -4]),
            Point::new(vec![0, 0, 0, 0]),
        ];
        let part = ArbitraryPartition::random(&mut rng(78), &records);
        let ys: Vec<usize> = vec![1, 2, 3];
        let expect: Vec<bool> = ys
            .iter()
            .map(|&y| dist_sq(&records[0], &records[y]) <= 20)
            .collect();
        for batching in [false, true] {
            let cfg = ProtocolConfig::new(
                DbscanParams {
                    eps_sq: 20,
                    min_pts: 2,
                },
                4,
            )
            .with_batching(batching);
            let mk = move || SharingBackend {
                tape: DealerTape::from_seed(909),
                batching,
                dot_mask_bound: 1 << 20,
            };
            let (mut achan, mut bchan) = duplex();
            type OwnedView = (Vec<Option<i64>>, Vec<Option<i64>>);
            let a_views: Vec<OwnedView> = ys
                .iter()
                .map(|&y| (part.alice_values[0].clone(), part.alice_values[y].clone()))
                .collect();
            let a = std::thread::spawn(move || {
                let views: Vec<PairView<'_>> =
                    a_views.iter().map(|(x, y)| PairView { x, y }).collect();
                let mut ledger = YaoLedger::default();
                let mut acct = SharingLedger::default();
                adp_compare_set_alice(
                    &mut achan,
                    &cfg,
                    &mk(),
                    &views,
                    &[1, 2, 3],
                    &ctx(800),
                    &mut ledger,
                    &mut acct,
                )
                .unwrap()
            });
            let b_views: Vec<PairView<'_>> = ys
                .iter()
                .map(|&y| PairView {
                    x: &part.bob_values[0],
                    y: &part.bob_values[y],
                })
                .collect();
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let bob = adp_compare_set_bob(
                &mut bchan,
                &cfg,
                &mk(),
                &b_views,
                &[1, 2, 3],
                &ctx(900),
                &mut ledger,
                &mut acct,
            )
            .unwrap();
            let alice = a.join().unwrap();
            assert_eq!(alice, expect, "batching={batching}");
            assert_eq!(bob, expect, "batching={batching}");
        }
    }

    #[test]
    fn pure_vertical_ownership_needs_no_multiplication() {
        // Constant per-column ownership => H is empty => ADP reduces to VDP.
        use crate::partition::Owner;
        let records = vec![Point::new(vec![0, 0]), Point::new(vec![3, 4])];
        let ownership = vec![vec![Owner::Alice, Owner::Bob]; 2];
        let part = ArbitraryPartition::from_records(&records, ownership);
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 25,
                min_pts: 2,
            },
            5,
        );
        assert!(run(cfg, &part, 0, 1)); // dist² = 25 ≤ 25 (boundary)
    }

    #[test]
    fn pure_horizontal_rows_exercise_full_multiplication() {
        use crate::partition::Owner;
        // Record 0 fully Alice's, record 1 fully Bob's: every attribute is a
        // split pair, V_A = V_B = 0.
        let records = vec![Point::new(vec![1, 2]), Point::new(vec![2, 4])];
        let ownership = vec![
            vec![Owner::Alice, Owner::Alice],
            vec![Owner::Bob, Owner::Bob],
        ];
        let part = ArbitraryPartition::from_records(&records, ownership);
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 5,
                min_pts: 2,
            },
            4,
        );
        assert!(run(cfg, &part, 0, 1)); // dist² = 1 + 4 = 5 ≤ 5
        let cfg_tight = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            4,
        );
        assert!(!run(cfg_tight, &part, 0, 1));
    }
}
