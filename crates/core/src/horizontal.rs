//! The horizontally partitioned DBSCAN drivers: the basic protocol
//! (Algorithms 3 & 4) and the enhanced protocol (Algorithms 7 & 8), which
//! share one expansion engine and differ only in the core-point test.
//!
//! Per the paper, the run is *symmetric*: Alice clusters her own points
//! while Bob answers her neighborhood queries, then the roles swap. Each
//! party ends with labels for its own records only (§3.3); cluster ids are
//! party-local and intentionally not reconciled across parties.
//!
//! Connectivity semantics: the querying party learns only *how many* (or,
//! enhanced, *whether enough*) peer points lie in a neighborhood — never
//! which ones — so expansion can only traverse the party's own points. The
//! plaintext reference of this behaviour is
//! [`ppds_dbscan::dbscan_with_external_density`], and the integration tests
//! assert label-exact agreement with it.
//!
//! Both protocols run through the shared [`crate::session`] dispatch; the
//! [`crate::session::Participant`] builder is the supported entry point.

use crate::config::ProtocolConfig;
use crate::driver::PartyOutput;
use crate::error::CoreError;
use crate::hdp::{hdp_query, hdp_serve};
use crate::session::{
    run_two_party, HandshakeProfile, Mode, ModeContext, ModeDriver, Session, SessionLog,
};
use ppds_dbscan::index::NeighborIndex;
use ppds_dbscan::{Clustering, Label, Point};
use ppds_observe::trace;
use ppds_smc::{LeakageEvent, Party, ProtocolContext};
use ppds_transport::Channel;
use std::collections::VecDeque;

/// Control tags framing the querier's stream of neighborhood queries.
const TAG_DONE: u8 = 0;
const TAG_QUERY: u8 = 1;

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Unclassified,
    Noise,
    Cluster(usize),
}

/// The querying party's DBSCAN loop (Algorithm 3 + the local half of
/// Algorithm 4), generic over the core-point test so the basic and
/// enhanced protocols share it.
///
/// `index` answers the party's *local* region queries (the ε-grid when
/// pruning is on, the linear scan otherwise — see
/// [`crate::prune::local_index`]; both return identical ascending index
/// lists, so the swap cannot perturb labels). `core_test(chan, point_idx,
/// own_neighbor_count)` runs one interactive core-point decision with the
/// responder.
pub(crate) fn querier_phase<C, F>(
    chan: &mut C,
    index: &dyn NeighborIndex,
    points: &[Point],
    mut core_test: F,
) -> Result<Clustering, CoreError>
where
    C: Channel,
    F: FnMut(&mut C, usize, usize) -> Result<bool, CoreError>,
{
    let mut states = vec![State::Unclassified; points.len()];
    let mut next_cluster = 0usize;

    for i in 0..points.len() {
        if states[i] != State::Unclassified {
            continue;
        }
        let seeds = index.region_query(&points[i]);
        chan.send(&TAG_QUERY)?;
        if !core_test(chan, i, seeds.len())? {
            states[i] = State::Noise;
            continue;
        }
        let cluster_id = next_cluster;
        next_cluster += 1;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in &seeds {
            states[s] = State::Cluster(cluster_id);
            if s != i {
                queue.push_back(s);
            }
        }
        while let Some(current) = queue.pop_front() {
            let result = index.region_query(&points[current]);
            chan.send(&TAG_QUERY)?;
            if core_test(chan, current, result.len())? {
                for &neighbor in &result {
                    match states[neighbor] {
                        State::Unclassified => {
                            queue.push_back(neighbor);
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Noise => {
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Cluster(_) => {}
                    }
                }
            }
        }
    }
    chan.send(&TAG_DONE)?;

    let labels = states
        .into_iter()
        .map(|s| match s {
            State::Unclassified => unreachable!("all points classified"),
            State::Noise => Label::Noise,
            State::Cluster(id) => Label::Cluster(id),
        })
        .collect();
    Ok(Clustering {
        labels,
        num_clusters: next_cluster,
    })
}

/// The responding party's loop: serve queries until the querier signals
/// completion.
pub(crate) fn responder_phase<C, F>(chan: &mut C, mut respond: F) -> Result<(), CoreError>
where
    C: Channel,
    F: FnMut(&mut C) -> Result<(), CoreError>,
{
    loop {
        let tag: u8 = chan.recv()?;
        match tag {
            TAG_DONE => return Ok(()),
            TAG_QUERY => respond(chan)?,
            other => {
                return Err(CoreError::Smc(ppds_smc::SmcError::protocol(format!(
                    "unexpected control tag {other}"
                ))))
            }
        }
    }
}

/// Shared local validation for complete-record modes: every point within
/// the agreed lattice bound, one common dimension, config usable.
pub(crate) fn validate_complete_records(
    cfg: &ProtocolConfig,
    points: &[Point],
) -> Result<(), CoreError> {
    let dim = points.first().map_or(0, Point::dim);
    cfg.validate(dim.max(1))?;
    check_points(cfg, points)
}

/// Handshake advertisement for complete-record modes. An empty side
/// advertises dimension 0, which the handshake treats as "any" (it still
/// answers queries — with zero matches — either way).
pub(crate) fn complete_records_profile(mode: Mode, points: &[Point]) -> HandshakeProfile {
    HandshakeProfile {
        mode,
        n: points.len(),
        dim: points.first().map_or(0, Point::dim),
        dim_must_match: true,
    }
}

/// The basic horizontal protocol as a [`ModeDriver`].
pub(crate) struct HorizontalDriver<'a> {
    pub points: &'a [Point],
}

impl ModeDriver for HorizontalDriver<'_> {
    fn validate(&self, cfg: &ProtocolConfig) -> Result<(), CoreError> {
        validate_complete_records(cfg, self.points)
    }

    fn profile(&self) -> HandshakeProfile {
        complete_records_profile(Mode::Horizontal, self.points)
    }

    fn check_session(&self, _cfg: &ProtocolConfig, _session: &Session) -> Result<(), CoreError> {
        Ok(())
    }

    fn execute<C: Channel>(
        &self,
        chan: &mut C,
        mctx: &ModeContext<'_>,
        ctx: &ProtocolContext,
        log: &mut SessionLog,
    ) -> Result<Clustering, CoreError> {
        let (cfg, session, points) = (mctx.cfg, mctx.session, self.points);
        let backend = mctx.backend(points.first().map_or(0, Point::dim));
        // Grid pruning: local queries go through the ε-grid, and each
        // cross-party query is preceded by a coarse-cell exchange that
        // narrows the served set to band-intersecting peer points (see
        // crate::prune for the exactness argument and leakage ledger).
        let index = crate::prune::local_index(points, cfg.params.eps_sq, cfg.pruning);
        let width = match cfg.pruning {
            ppds_dbscan::Pruning::Grid { coarseness } => {
                Some(ppds_dbscan::band_width(cfg.params.eps_sq, coarseness))
            }
            ppds_dbscan::Pruning::Exhaustive => None,
        };
        let grid = width.map(|w| ppds_dbscan::CoarseGrid::from_points(points, w));
        // One context instance per issued/served query, keyed by querying
        // *direction* rather than local phase: the querier's q-th query and
        // the responder's q-th serve are two halves of the same protocol
        // instance and must walk identical context paths — the sharing
        // backend re-keys this path onto the shared dealer seed, so a path
        // mismatch would decorrelate the two sides' tape draws. The batched
        // framing (same query sequence) derives identical streams too.
        let (my_queries, peer_queries) = match mctx.role {
            Party::Alice => ("hdp_a", "hdp_b"),
            Party::Bob => ("hdp_b", "hdp_a"),
        };
        let query_ctx = ctx.narrow(my_queries);
        let serve_ctx = ctx.narrow(peer_queries);
        let run_query_phase = |chan: &mut C, log: &mut SessionLog| {
            let mut q = 0u64;
            querier_phase(chan, index.as_ref(), points, |chan, idx, own_count| {
                // One HDP query per core test: batched mode ships the whole
                // responder set in O(1) wire rounds.
                let qctx = query_ctx.at(q);
                let span = trace::span_with(|| format!("query#{q}"), || chan.metrics());
                q += 1;
                // When pruning, disclose the query's coarse cell and learn
                // how many peer points survive the band filter; the secure
                // phase then runs over that candidate set only.
                let responder_count = match width {
                    Some(w) => crate::prune::query_candidate_count(
                        chan,
                        &points[idx],
                        w,
                        &mut log.leakage,
                        &format!("own#{idx}"),
                    )?,
                    None => session.peer_n,
                };
                let peer_count = hdp_query(
                    chan,
                    cfg,
                    &backend,
                    &points[idx],
                    responder_count,
                    &qctx,
                    &mut log.ledger,
                    &mut log.sharing,
                )?;
                span.end(|| chan.metrics());
                log.leakage.record(LeakageEvent::NeighborCount {
                    query: format!("own#{idx}"),
                    count: peer_count as u64,
                });
                Ok(own_count + peer_count >= cfg.params.min_pts)
            })
        };
        let run_respond_phase = |chan: &mut C, log: &mut SessionLog| {
            let mut q = 0u64;
            responder_phase(chan, |chan| {
                let qctx = serve_ctx.at(q);
                let span = trace::span_with(|| format!("serve#{q}"), || chan.metrics());
                let candidates = match &grid {
                    Some(g) => crate::prune::respond_candidates(
                        chan,
                        g,
                        &mut log.leakage,
                        &format!("serve#{q}"),
                    )?,
                    None => crate::prune::all_candidates(points.len()),
                };
                q += 1;
                hdp_serve(
                    chan,
                    cfg,
                    &backend,
                    points,
                    &candidates,
                    &qctx,
                    &mut log.ledger,
                    &mut log.sharing,
                    &mut log.leakage,
                )?;
                span.end(|| chan.metrics());
                Ok(())
            })
        };

        match mctx.role {
            Party::Alice => {
                let clustering = run_query_phase(chan, log)?;
                run_respond_phase(chan, log)?;
                Ok(clustering)
            }
            Party::Bob => {
                run_respond_phase(chan, log)?;
                run_query_phase(chan, log)
            }
        }
    }
}

/// One party's full run of the **basic** horizontal protocol.
///
/// Alice queries first while Bob responds, then the roles swap — both
/// orderings driven by `role`. Returns this party's own clustering.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::Participant with PartyData::Horizontal"
)]
pub fn horizontal_party<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_points: &[Point],
    role: Party,
    rng: rand::rngs::StdRng,
) -> Result<PartyOutput, CoreError> {
    let mut rng = rng;
    run_two_party(
        chan,
        cfg,
        &HorizontalDriver { points: my_points },
        role,
        None,
        &ProtocolContext::from_rng(&mut rng),
    )
    .map(|outcome| outcome.output)
}

/// One party's full run of the **enhanced** protocol (Section 5).
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::Participant with PartyData::Enhanced"
)]
pub fn enhanced_party<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_points: &[Point],
    role: Party,
    rng: rand::rngs::StdRng,
) -> Result<PartyOutput, CoreError> {
    let mut rng = rng;
    run_two_party(
        chan,
        cfg,
        &crate::enhanced::EnhancedDriver { points: my_points },
        role,
        None,
        &ProtocolContext::from_rng(&mut rng),
    )
    .map(|outcome| outcome.output)
}

/// Validates that every local point respects the agreed lattice bound and
/// shares one dimension.
pub(crate) fn check_points(cfg: &ProtocolConfig, points: &[Point]) -> Result<(), CoreError> {
    let dim = points.first().map_or(0, Point::dim);
    for (i, p) in points.iter().enumerate() {
        if p.dim() != dim {
            return Err(CoreError::config(format!(
                "point {i} has dimension {} but point 0 has {dim}",
                p.dim()
            )));
        }
        if p.max_abs_coord() > cfg.coord_bound {
            return Err(CoreError::config(format!(
                "point {i} exceeds the agreed coordinate bound {}",
                cfg.coord_bound
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::driver::{run_enhanced_pair, run_horizontal_pair};
    use crate::session::{Participant, PartyData};
    use crate::test_helpers::rng;
    use ppds_dbscan::{dbscan_with_external_density, eval, DbscanParams};

    fn pts(coords: &[&[i64]]) -> Vec<Point> {
        coords.iter().map(|c| Point::from(*c)).collect()
    }

    fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
        ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound)
    }

    // The deprecated pair helpers stay the most convenient harness for
    // these unit tests and double as coverage that the wrappers still work.
    #[allow(deprecated)]
    fn horizontal(
        c: &ProtocolConfig,
        alice: &[Point],
        bob: &[Point],
        sa: u64,
        sb: u64,
    ) -> (PartyOutput, PartyOutput) {
        run_horizontal_pair(c, alice, bob, rng(sa), rng(sb)).unwrap()
    }

    #[allow(deprecated)]
    fn enhanced(
        c: &ProtocolConfig,
        alice: &[Point],
        bob: &[Point],
        sa: u64,
        sb: u64,
    ) -> (PartyOutput, PartyOutput) {
        run_enhanced_pair(c, alice, bob, rng(sa), rng(sb)).unwrap()
    }

    #[test]
    fn basic_matches_external_density_reference() {
        let alice = pts(&[&[0, 0], &[1, 0], &[10, 10], &[11, 10], &[30, -30]]);
        let bob = pts(&[&[0, 1], &[1, 1], &[10, 11], &[-30, 30]]);
        let c = cfg(4, 3, 40);
        let (a_out, b_out) = horizontal(&c, &alice, &bob, 1, 2);
        let a_ref = dbscan_with_external_density(&alice, &bob, c.params);
        let b_ref = dbscan_with_external_density(&bob, &alice, c.params);
        assert_eq!(a_out.clustering, a_ref, "alice labels");
        assert_eq!(b_out.clustering, b_ref, "bob labels");
        assert!(a_out.traffic.total_bytes() > 0);
        assert!(a_out.yao.comparisons > 0);
    }

    #[test]
    fn enhanced_matches_basic_labels() {
        let alice = pts(&[&[0, 0], &[1, 0], &[10, 10], &[11, 10], &[30, -30]]);
        let bob = pts(&[&[0, 1], &[1, 1], &[10, 11], &[-30, 30]]);
        let c = cfg(4, 3, 40);
        let (basic_a, basic_b) = horizontal(&c, &alice, &bob, 3, 4);
        let (enh_a, enh_b) = enhanced(&c, &alice, &bob, 5, 6);
        assert_eq!(basic_a.clustering, enh_a.clustering);
        assert_eq!(basic_b.clustering, enh_b.clustering);
    }

    #[test]
    fn leakage_profiles_match_theorems_9_and_11() {
        let alice = pts(&[&[0, 0], &[1, 0], &[9, 9]]);
        let bob = pts(&[&[0, 1], &[8, 9]]);
        let c = cfg(4, 2, 15);
        let (basic_a, _b) = horizontal(&c, &alice, &bob, 7, 8);
        // Theorem 9: one neighbor count per query the party issued.
        assert!(basic_a.leakage.count_kind("neighbor_count") > 0);
        assert_eq!(basic_a.leakage.count_kind("core_point_bit"), 0);

        let (enh_a, _b) = enhanced(&c, &alice, &bob, 9, 10);
        // Theorem 11: core-point bits only, never a count.
        assert_eq!(enh_a.leakage.count_kind("neighbor_count"), 0);
        assert!(enh_a.leakage.count_kind("core_point_bit") > 0);
    }

    #[test]
    fn cross_party_density_counts_are_used() {
        // Alone, neither side clusters (every point would be noise); with
        // the peer's density both sides find their cluster.
        let alice = pts(&[&[0, 0], &[2, 0]]);
        let bob = pts(&[&[1, 0], &[1, 1]]);
        let c = cfg(4, 3, 5);
        let (a_out, b_out) = horizontal(&c, &alice, &bob, 11, 12);
        assert_eq!(a_out.clustering.noise_count(), 0);
        assert_eq!(b_out.clustering.noise_count(), 0);
        assert_eq!(a_out.clustering.num_clusters, 1);
    }

    #[test]
    fn empty_bob_side_degenerates_to_local_dbscan() {
        let alice = pts(&[&[0], &[1], &[2], &[50]]);
        let bob: Vec<Point> = vec![];
        let c = cfg(1, 2, 60);
        let (a_out, b_out) = horizontal(&c, &alice, &bob, 13, 14);
        let reference = dbscan_with_external_density(&alice, &[], c.params);
        assert_eq!(a_out.clustering, reference);
        assert!(b_out.clustering.labels.is_empty());
    }

    #[test]
    fn rand_index_against_centralized_union() {
        // Well-separated clusters split across parties: each party's view
        // agrees perfectly with centralized DBSCAN restricted to its points.
        let alice = pts(&[&[0, 0], &[1, 1], &[20, 20], &[21, 21]]);
        let bob = pts(&[&[0, 1], &[1, 0], &[20, 21], &[21, 20]]);
        let c = cfg(8, 4, 30);
        let (a_out, _) = horizontal(&c, &alice, &bob, 15, 16);
        let mut union = alice.clone();
        union.extend(bob.iter().cloned());
        let central = ppds_dbscan::dbscan(&union, c.params);
        let central_alice = Clustering {
            labels: central.labels[..alice.len()].to_vec(),
            num_clusters: central.num_clusters,
        };
        assert!((eval::rand_index(&a_out.clustering, &central_alice) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handshake_mismatch_detected() {
        let alice = pts(&[&[0]]);
        let bob = pts(&[&[0]]);
        let cfg_a = cfg(4, 2, 5);
        let cfg_b = cfg(9, 2, 5); // different Eps²
        let result = crate::driver::run_pair(
            |mut chan| {
                Participant::new(cfg_a)
                    .role(Party::Alice)
                    .data(PartyData::Horizontal(alice.clone()))
                    .seed(17)
                    .run(&mut chan)
            },
            |mut chan| {
                Participant::new(cfg_b)
                    .role(Party::Bob)
                    .data(PartyData::Horizontal(bob.clone()))
                    .seed(18)
                    .run(&mut chan)
            },
        );
        match result.unwrap_err() {
            CoreError::HandshakeMismatch { field, .. } => assert_eq!(field, "eps_sq"),
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn out_of_bound_points_rejected_locally() {
        let alice = pts(&[&[100, 0]]);
        let c = cfg(4, 2, 5);
        let (mut chan, _peer) = ppds_transport::duplex();
        let err = Participant::new(c)
            .role(Party::Alice)
            .data(PartyData::Horizontal(alice))
            .seed(19)
            .run(&mut chan)
            .unwrap_err();
        assert!(matches!(err, CoreError::Config(_)));
    }
}
