//! Protocol HDP (§4.2): secure `dist²(a, b) ≤ Eps²` for horizontally
//! partitioned records, batched into one *neighborhood query* — the
//! querying party's point against every point of the responder, in a fresh
//! random order chosen by the responder.
//!
//! Per pair the paper's recipe runs in two stages:
//!
//! 1. **Multiplication stage.** The responder is the Multiplication
//!    Protocol keyholder with his attribute values `b_k`; the querier is
//!    the peer with her values `a_k` and zero-sum blinding terms `r_k`
//!    (`Σ r_k = 0`). The responder learns `w_k = a_k·b_k + r_k` and sums
//!    them to the exact inner product `⟨a, b⟩` — individual products stay
//!    hidden behind the `r_k`.
//! 2. **Comparison stage.** Querier input `i = Σ a_k²`; responder input
//!    `j = Eps² − Σ b_k² + 2⟨a, b⟩`. One Yao comparison decides
//!    `i ≤ j ⟺ dist²(a, b) ≤ Eps²`.
//!
//! The querier ends with the *count* of matching responder points (the
//! Theorem 9 leakage); because the responder permutes his points per query,
//! the querier cannot link matches across queries, which defeats the
//! Figure 1 intersection attack. The responder learns, for each of his own
//! points, whether it matched *some* unidentified query point (and logs it
//! as [`LeakageEvent::OwnPointMatched`]).

use crate::config::{ProtocolConfig, YaoLedger};
use crate::domain::hdp_domain;
use ppds_bigint::BigInt;
use ppds_dbscan::Point;
use ppds_paillier::{Keypair, PublicKey};
use ppds_smc::compare::{
    compare_alice, compare_batch_alice, compare_batch_bob, compare_bob, CmpOp,
};
use ppds_smc::multiplication::{
    mul_batch_keyholder, mul_batch_peer, mul_batches_keyholder, mul_batches_peer, zero_sum_masks,
};
use ppds_smc::ResponsePacking;
use ppds_smc::{LeakageEvent, LeakageLog, ProtocolContext, SmcError};
use ppds_transport::Channel;
use rand::seq::SliceRandom;

fn coords_as_bigint(p: &Point) -> Vec<BigInt> {
    p.coords().iter().map(|&c| BigInt::from_i64(c)).collect()
}

/// Querier side of one neighborhood query: returns how many of the
/// responder's `responder_count` points lie within `Eps` of `query`.
/// `ctx` is this query instance's context (the driver narrows per query);
/// responder point `i` draws its masks, multiplication nonces, and
/// comparison randomness from substreams keyed by `i`, so the batched
/// framing derives identical bytes.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_query_querier<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    responder_pk: &PublicKey,
    query: &Point,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<usize, SmcError> {
    let dim = query.dim();
    let domain = hdp_domain(cfg, dim);
    let i_val = i64::try_from(query.norm_sq()).expect("ΣA² fits i64 on a validated lattice");
    let ys = coords_as_bigint(query);
    let (mask_ctx, mul_ctx, cmp_ctx) = (ctx.narrow("mask"), ctx.narrow("mul"), ctx.narrow("cmp"));
    let mut count = 0usize;
    for pos in 0..responder_count {
        // Stage 1: responder (keyholder) gets a_k·b_k + r_k per attribute.
        let masks = zero_sum_masks(mask_ctx.rng_for(pos as u64), dim, &cfg.mul_mask_bound());
        mul_batch_peer(
            chan,
            responder_pk,
            &ys,
            &masks,
            mul_packing(cfg, dim).as_ref(),
            &mul_ctx.at(pos as u64),
        )?;
        // Stage 2: one Yao comparison under the querier's key.
        ledger.record(cfg.key_bits, domain.n0());
        let within = compare_alice(
            cfg.comparator,
            chan,
            my_keypair,
            i_val,
            CmpOp::Leq,
            &domain,
            cfg.packing,
            &cmp_ctx.at(pos as u64),
        )?;
        count += within as usize;
    }
    Ok(count)
}

/// Responder side of one neighborhood query over `my_points`. Returns the
/// number of own points that matched (the same bits the querier counted).
/// The Figure-1-defense permutation draws from the query context's
/// `"perm"` substream; the point at permuted position `i` keys its
/// multiplication and comparison randomness by `i`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_respond<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    querier_pk: &PublicKey,
    my_points: &[Point],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    leakage: &mut LeakageLog,
) -> Result<usize, SmcError> {
    let dim = my_points.first().map_or(0, Point::dim);
    let domain = hdp_domain(cfg, dim);
    let eps = cfg.params.eps_sq as i64;

    // Fresh permutation per query: the querier sees match bits in an order
    // it cannot link to any previous query (Figure 1 defense).
    let mut order: Vec<usize> = (0..my_points.len()).collect();
    order.shuffle(&mut ctx.narrow("perm").rng());
    let (mul_ctx, cmp_ctx) = (ctx.narrow("mul"), ctx.narrow("cmp"));

    let mut count = 0usize;
    for (pos, &idx) in order.iter().enumerate() {
        let point = &my_points[idx];
        let xs = coords_as_bigint(point);
        let ws = mul_batch_keyholder(
            chan,
            my_keypair,
            &xs,
            mul_packing(cfg, dim).as_ref(),
            &mul_ctx.at(pos as u64),
        )?;
        let inner_product: i64 = ws
            .iter()
            .fold(BigInt::zero(), |acc, w| &acc + w)
            .to_i64()
            .ok_or_else(|| SmcError::protocol("inner product overflows i64"))?;
        let j_val = eps - point.norm_sq() as i64 + 2 * inner_product;
        ledger.record(cfg.key_bits, domain.n0());
        let within = compare_bob(
            cfg.comparator,
            chan,
            querier_pk,
            j_val,
            CmpOp::Leq,
            &domain,
            cfg.packing,
            &cmp_ctx.at(pos as u64),
        )?;
        if within {
            count += 1;
            leakage.record(LeakageEvent::OwnPointMatched {
                point: format!("own#{idx}"),
            });
        }
    }
    Ok(count)
}

/// One neighborhood query dispatched on `cfg.batching`:
/// [`hdp_query_querier_batch`] when on, [`hdp_query_querier`] when off.
/// The count returned is identical either way.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_query<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    responder_pk: &PublicKey,
    query: &Point,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<usize, SmcError> {
    if cfg.batching {
        hdp_query_querier_batch(
            chan,
            cfg,
            my_keypair,
            responder_pk,
            query,
            responder_count,
            ctx,
            ledger,
        )
    } else {
        hdp_query_querier(
            chan,
            cfg,
            my_keypair,
            responder_pk,
            query,
            responder_count,
            ctx,
            ledger,
        )
    }
}

/// Responder side of [`hdp_query`], dispatched the same way.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_serve<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    querier_pk: &PublicKey,
    my_points: &[Point],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    leakage: &mut LeakageLog,
) -> Result<usize, SmcError> {
    if cfg.batching {
        hdp_respond_batch(
            chan, cfg, my_keypair, querier_pk, my_points, ctx, ledger, leakage,
        )
    } else {
        hdp_respond(
            chan, cfg, my_keypair, querier_pk, my_points, ctx, ledger, leakage,
        )
    }
}

/// Round-batched querier side: the same neighborhood query as
/// [`hdp_query_querier`], but the multiplication stage for **all**
/// responder points rides one wire frame each direction and the final
/// decisions run as one batched comparison — 5 rounds per query instead of
/// 5 per responder point.
///
/// Point `i` of the batch draws its masks, nonces, and comparison
/// randomness from the same keyed substreams the sequential
/// [`hdp_query_querier`] loop derives for position `i`, so under the same
/// session seed the count returned, the responder's permutation, and both
/// leakage logs are identical to the unbatched run — and the per-point
/// ciphertext work parallelizes (see [`ppds_smc::parallel`]).
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_query_querier_batch<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    responder_pk: &PublicKey,
    query: &Point,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<usize, SmcError> {
    if responder_count == 0 {
        return Ok(0);
    }
    let dim = query.dim();
    let domain = hdp_domain(cfg, dim);
    let i_val = i64::try_from(query.norm_sq()).expect("ΣA² fits i64 on a validated lattice");
    let ys = coords_as_bigint(query);
    let (mask_ctx, mul_ctx, cmp_ctx) = (ctx.narrow("mask"), ctx.narrow("mul"), ctx.narrow("cmp"));
    // Stage 1: every responder point's masked products in one frame pair.
    // Every group is the same query vector, borrowed — not cloned — per point.
    let ys_groups: Vec<&[BigInt]> = vec![ys.as_slice(); responder_count];
    let bound = cfg.mul_mask_bound();
    mul_batches_peer(
        chan,
        responder_pk,
        &ys_groups,
        |g| zero_sum_masks(mask_ctx.rng_for(g as u64), dim, &bound),
        |g| mul_ctx.at(g as u64),
        mul_packing(cfg, dim).as_ref(),
    )?;
    // Stage 2: one batched comparison run for the whole candidate set.
    let values = vec![i_val; responder_count];
    for _ in 0..responder_count {
        ledger.record(cfg.key_bits, domain.n0());
    }
    let within = compare_batch_alice(
        cfg.comparator,
        chan,
        my_keypair,
        &values,
        CmpOp::Leq,
        &domain,
        cfg.packing,
        &cmp_ctx,
    )?;
    Ok(within.into_iter().filter(|&b| b).count())
}

/// Round-batched responder side of [`hdp_query_querier_batch`]. The fresh
/// per-query permutation (the Figure 1 defense) draws from the same
/// `"perm"` substream as [`hdp_respond`], and matched own-point leakage
/// events are recorded in the same permuted order. Because the point at
/// permuted position `i` keys all its randomness by `i`, the DGK
/// backend's value-dependent draws no longer shift any other point's
/// stream — the divergence that used to be pinned red by
/// `dgk_backend_parity_on_horizontal` is gone by construction.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_respond_batch<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    querier_pk: &PublicKey,
    my_points: &[Point],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    leakage: &mut LeakageLog,
) -> Result<usize, SmcError> {
    let dim = my_points.first().map_or(0, Point::dim);
    let domain = hdp_domain(cfg, dim);
    let eps = cfg.params.eps_sq as i64;

    let mut order: Vec<usize> = (0..my_points.len()).collect();
    order.shuffle(&mut ctx.narrow("perm").rng());
    let (mul_ctx, cmp_ctx) = (ctx.narrow("mul"), ctx.narrow("cmp"));
    if my_points.is_empty() {
        return Ok(0);
    }

    let xs_groups: Vec<Vec<BigInt>> = order
        .iter()
        .map(|&idx| coords_as_bigint(&my_points[idx]))
        .collect();
    let ws_groups = mul_batches_keyholder(
        chan,
        my_keypair,
        &xs_groups,
        |g| mul_ctx.at(g as u64),
        mul_packing(cfg, dim).as_ref(),
    )?;
    let mut j_vals = Vec::with_capacity(order.len());
    for (&idx, ws) in order.iter().zip(&ws_groups) {
        let inner_product: i64 = ws
            .iter()
            .fold(BigInt::zero(), |acc, w| &acc + w)
            .to_i64()
            .ok_or_else(|| SmcError::protocol("inner product overflows i64"))?;
        ledger.record(cfg.key_bits, domain.n0());
        j_vals.push(eps - my_points[idx].norm_sq() as i64 + 2 * inner_product);
    }
    let within = compare_batch_bob(
        cfg.comparator,
        chan,
        querier_pk,
        &j_vals,
        CmpOp::Leq,
        &domain,
        cfg.packing,
        &cmp_ctx,
    )?;
    let mut count = 0usize;
    for (pos, &matched) in within.iter().enumerate() {
        if matched {
            count += 1;
            leakage.record(LeakageEvent::OwnPointMatched {
                point: format!("own#{}", order[pos]),
            });
        }
    }
    Ok(count)
}

/// The Multiplication Protocol response packing this config selects for
/// `dim`-attribute groups: `Some` when `cfg.packing` is on (validated
/// configs always have a layout), `None` otherwise.
pub(crate) fn mul_packing(cfg: &ProtocolConfig, dim: usize) -> Option<ResponsePacking> {
    if cfg.packing {
        crate::domain::mul_response_packing(cfg, dim)
    } else {
        None
    }
}

impl ProtocolConfig {
    /// Mask bound for the Multiplication Protocol's blinding terms:
    /// `C² · 2^σ`, so each masked product `a_k·b_k + r_k` hides its value
    /// with σ bits of statistical slack. These never enter a Yao comparison
    /// (the `r_k` cancel), so σ can be large regardless of the comparator.
    pub fn mul_mask_bound(&self) -> ppds_bigint::BigUint {
        let c2 = (self.coord_bound as u128) * (self.coord_bound as u128);
        ppds_bigint::BigUint::from_u128(c2 << self.mask_bits.min(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{ctx, rng};
    use ppds_dbscan::{dist_sq, DbscanParams};
    use ppds_paillier::Keypair;
    use ppds_transport::duplex;
    use std::sync::OnceLock;

    fn querier_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(11)))
    }

    fn responder_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(22)))
    }

    fn run_query(
        cfg: &ProtocolConfig,
        query: Point,
        responder_points: Vec<Point>,
    ) -> (usize, usize, LeakageLog) {
        let (mut qchan, mut rchan) = duplex();
        let nb = responder_points.len();
        let cfg_q = *cfg;
        let q = std::thread::spawn(move || {
            let mut ledger = YaoLedger::default();
            hdp_query_querier(
                &mut qchan,
                &cfg_q,
                querier_kp(),
                &responder_kp().public,
                &query,
                nb,
                &ctx(100),
                &mut ledger,
            )
            .unwrap()
        });
        let mut ledger = YaoLedger::default();
        let mut leakage = LeakageLog::new();
        let responder_count = hdp_respond(
            &mut rchan,
            cfg,
            responder_kp(),
            &querier_kp().public,
            &responder_points,
            &ctx(200),
            &mut ledger,
            &mut leakage,
        )
        .unwrap();
        (q.join().unwrap(), responder_count, leakage)
    }

    #[test]
    fn counts_match_plain_distance_computation() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 9,
                min_pts: 3,
            },
            10,
        );
        let query = Point::new(vec![0, 0]);
        let responder_points = vec![
            Point::new(vec![1, 1]),   // dist² 2: in
            Point::new(vec![3, 0]),   // dist² 9: in (boundary)
            Point::new(vec![3, 1]),   // dist² 10: out
            Point::new(vec![-2, -2]), // dist² 8: in
            Point::new(vec![10, 10]), // out
        ];
        let expected = responder_points
            .iter()
            .filter(|p| dist_sq(p, &query) <= 9)
            .count();
        let (qc, rc, leakage) = run_query(&cfg, query, responder_points);
        assert_eq!(qc, expected);
        assert_eq!(rc, expected);
        assert_eq!(leakage.count_kind("own_point_matched"), expected);
    }

    fn run_query_batch(
        cfg: &ProtocolConfig,
        query: Point,
        responder_points: Vec<Point>,
        seeds: (u64, u64),
    ) -> (usize, usize, LeakageLog, ppds_transport::MetricsSnapshot) {
        let (mut qchan, mut rchan) = duplex();
        let nb = responder_points.len();
        let cfg_q = *cfg;
        let q = std::thread::spawn(move || {
            let mut ledger = YaoLedger::default();
            let count = hdp_query_querier_batch(
                &mut qchan,
                &cfg_q,
                querier_kp(),
                &responder_kp().public,
                &query,
                nb,
                &ctx(seeds.0),
                &mut ledger,
            )
            .unwrap();
            (count, qchan.metrics())
        });
        let mut ledger = YaoLedger::default();
        let mut leakage = LeakageLog::new();
        let responder_count = hdp_respond_batch(
            &mut rchan,
            cfg,
            responder_kp(),
            &querier_kp().public,
            &responder_points,
            &ctx(seeds.1),
            &mut ledger,
            &mut leakage,
        )
        .unwrap();
        let (querier_count, metrics) = q.join().unwrap();
        (querier_count, responder_count, leakage, metrics)
    }

    #[test]
    fn batched_query_matches_sequential_and_collapses_rounds() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 9,
                min_pts: 3,
            },
            10,
        );
        let query = Point::new(vec![0, 0]);
        let responder_points = vec![
            Point::new(vec![1, 1]),
            Point::new(vec![3, 0]),
            Point::new(vec![3, 1]),
            Point::new(vec![-2, -2]),
            Point::new(vec![10, 10]),
        ];
        // Same seeds as the sequential run: count AND leakage must match
        // (the responder's permutation is drawn at the same stream point).
        let (seq_q, seq_r, seq_leak) = run_query(&cfg, query.clone(), responder_points.clone());
        let (bat_q, bat_r, bat_leak, metrics) =
            run_query_batch(&cfg, query, responder_points, (100, 200));
        assert_eq!(bat_q, seq_q);
        assert_eq!(bat_r, seq_r);
        assert_eq!(bat_leak, seq_leak, "identical permuted leakage order");
        // 5 rounds per query (2 mul + 3 compare) instead of 5 per point.
        assert_eq!(metrics.total_rounds(), 5);
        assert!(metrics.total_messages() > metrics.total_rounds());
    }

    #[test]
    fn batched_empty_responder_set() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            5,
        );
        let (qc, rc, leakage, metrics) =
            run_query_batch(&cfg, Point::new(vec![0, 0]), vec![], (100, 200));
        assert_eq!(qc, 0);
        assert_eq!(rc, 0);
        assert!(leakage.is_empty());
        assert_eq!(metrics.total_rounds(), 0);
    }

    #[test]
    fn works_with_negative_coordinates_and_yao() {
        let cfg = ProtocolConfig::new_with_yao(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            3,
        );
        let query = Point::new(vec![-2, 1]);
        let pts = vec![Point::new(vec![-1, 1]), Point::new(vec![2, -2])];
        let (qc, rc, _) = run_query(&cfg, query, pts);
        assert_eq!(qc, 1);
        assert_eq!(rc, 1);
    }

    #[test]
    fn empty_responder_set() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            5,
        );
        let (qc, rc, leakage) = run_query(&cfg, Point::new(vec![0, 0]), vec![]);
        assert_eq!(qc, 0);
        assert_eq!(rc, 0);
        assert!(leakage.is_empty());
    }

    #[test]
    fn ledger_counts_one_comparison_per_pair() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            5,
        );
        let (mut qchan, mut rchan) = duplex();
        let q = std::thread::spawn(move || {
            let mut ledger = YaoLedger::default();
            let c = hdp_query_querier(
                &mut qchan,
                &cfg,
                querier_kp(),
                &responder_kp().public,
                &Point::new(vec![0, 0]),
                3,
                &ctx(7),
                &mut ledger,
            )
            .unwrap();
            (c, ledger)
        });
        let mut ledger = YaoLedger::default();
        let mut leakage = LeakageLog::new();
        let pts = vec![
            Point::new(vec![0, 1]),
            Point::new(vec![4, 4]),
            Point::new(vec![1, 0]),
        ];
        hdp_respond(
            &mut rchan,
            &cfg,
            responder_kp(),
            &querier_kp().public,
            &pts,
            &ctx(8),
            &mut ledger,
            &mut leakage,
        )
        .unwrap();
        let (_, q_ledger) = q.join().unwrap();
        assert_eq!(q_ledger.comparisons, 3);
        assert_eq!(ledger.comparisons, 3);
        assert!(q_ledger.modeled_bytes > 0);
    }
}
