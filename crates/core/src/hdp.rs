//! Protocol HDP (§4.2): secure `dist²(a, b) ≤ Eps²` for horizontally
//! partitioned records, batched into one *neighborhood query* — the
//! querying party's point against every point of the responder, in a fresh
//! random order chosen by the responder.
//!
//! Per pair the paper's recipe runs in two stages:
//!
//! 1. **Multiplication stage.** The responder is the Multiplication
//!    Protocol keyholder with his attribute values `b_k`; the querier is
//!    the peer with her values `a_k` and zero-sum blinding terms `r_k`
//!    (`Σ r_k = 0`). The responder learns `w_k = a_k·b_k + r_k` and sums
//!    them to the exact inner product `⟨a, b⟩` — individual products stay
//!    hidden behind the `r_k`.
//! 2. **Comparison stage.** Querier input `i = Σ a_k²`; responder input
//!    `j = Eps² − Σ b_k² + 2⟨a, b⟩`. One Yao comparison decides
//!    `i ≤ j ⟺ dist²(a, b) ≤ Eps²`.
//!
//! Both stages run through the session's [`SmcBackend`] — the Paillier
//! substrate reproduces the direct homomorphic calls byte-for-byte, the
//! sharing substrate replaces them with Beaver folds and masked opens over
//! `Z_2^64` (same dataflow, 8-byte elements; see DESIGN.md §14).
//!
//! The querier ends with the *count* of matching responder points (the
//! Theorem 9 leakage); because the responder permutes his points per query,
//! the querier cannot link matches across queries, which defeats the
//! Figure 1 intersection attack. The responder learns, for each of his own
//! points, whether it matched *some* unidentified query point (and logs it
//! as [`LeakageEvent::OwnPointMatched`]).

use crate::config::{ProtocolConfig, YaoLedger};
use crate::domain::hdp_domain;
use ppds_dbscan::Point;
use ppds_smc::compare::CmpOp;
use ppds_smc::ResponsePacking;
use ppds_smc::{
    LeakageEvent, LeakageLog, Party, ProtocolContext, SharingLedger, SmcBackend, SmcError,
};
use ppds_transport::Channel;
use rand::seq::SliceRandom;

/// Querier side of one neighborhood query: returns how many of the
/// responder's `responder_count` points lie within `Eps` of `query`.
/// `ctx` is this query instance's context (the driver narrows per query);
/// responder point `i` draws its masks, multiplication nonces, and
/// comparison randomness from substreams keyed by `i`, so the batched
/// framing derives identical bytes.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_query_querier<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    query: &Point,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<usize, SmcError> {
    let dim = query.dim();
    let domain = hdp_domain(cfg, dim);
    let i_val = i64::try_from(query.norm_sq()).expect("ΣA² fits i64 on a validated lattice");
    let ys_group = vec![query.coords().to_vec()];
    let cmp_ctx = ctx.narrow("cmp");
    let mut count = 0usize;
    for pos in 0..responder_count {
        // Stage 1: responder (keyholder) gets a_k·b_k + r_k per attribute.
        backend.mul_fold_peer(chan, &ys_group, &[pos as u64], ctx, acct)?;
        // Stage 2: one Yao comparison under the querier's key.
        ledger.record(cfg.key_bits, domain.n0());
        let within = backend.compare(
            chan,
            Party::Alice,
            i_val,
            CmpOp::Leq,
            &domain,
            &cmp_ctx.at(pos as u64),
            acct,
        )?;
        count += within as usize;
    }
    Ok(count)
}

/// Responder side of one neighborhood query over `my_points`, restricted
/// to the `candidates` indices (the full range when pruning is off — see
/// the crate-internal `prune` module). Returns the number of served points
/// that matched
/// (the same bits the querier counted). The Figure-1-defense permutation
/// draws from the query context's `"perm"` substream; the point at
/// permuted position `i` keys its multiplication and comparison
/// randomness by `i`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_respond<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    my_points: &[Point],
    candidates: &[usize],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
    leakage: &mut LeakageLog,
) -> Result<usize, SmcError> {
    let dim = my_points.first().map_or(0, Point::dim);
    let domain = hdp_domain(cfg, dim);
    let eps = cfg.params.eps_sq as i64;

    // Fresh permutation per query: the querier sees match bits in an order
    // it cannot link to any previous query (Figure 1 defense).
    let mut order: Vec<usize> = candidates.to_vec();
    order.shuffle(&mut ctx.narrow("perm").rng());
    let cmp_ctx = ctx.narrow("cmp");

    let mut count = 0usize;
    for (pos, &idx) in order.iter().enumerate() {
        let point = &my_points[idx];
        let xs_group = vec![point.coords().to_vec()];
        let inner_product =
            backend.mul_fold_keyholder(chan, &xs_group, &[pos as u64], ctx, acct)?[0];
        let j_val = eps - point.norm_sq() as i64 + 2 * inner_product;
        ledger.record(cfg.key_bits, domain.n0());
        let within = backend.compare(
            chan,
            Party::Bob,
            j_val,
            CmpOp::Leq,
            &domain,
            &cmp_ctx.at(pos as u64),
            acct,
        )?;
        if within {
            count += 1;
            leakage.record(LeakageEvent::OwnPointMatched {
                point: format!("own#{idx}"),
            });
        }
    }
    Ok(count)
}

/// One neighborhood query dispatched on `cfg.batching`:
/// [`hdp_query_querier_batch`] when on, [`hdp_query_querier`] when off.
/// The count returned is identical either way.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_query<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    query: &Point,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<usize, SmcError> {
    if cfg.batching {
        hdp_query_querier_batch(
            chan,
            cfg,
            backend,
            query,
            responder_count,
            ctx,
            ledger,
            acct,
        )
    } else {
        hdp_query_querier(
            chan,
            cfg,
            backend,
            query,
            responder_count,
            ctx,
            ledger,
            acct,
        )
    }
}

/// Responder side of [`hdp_query`], dispatched the same way. `candidates`
/// restricts the served set (pass the full range when pruning is off);
/// its length must equal the `responder_count` the querier uses.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_serve<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    my_points: &[Point],
    candidates: &[usize],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
    leakage: &mut LeakageLog,
) -> Result<usize, SmcError> {
    if cfg.batching {
        hdp_respond_batch(
            chan, cfg, backend, my_points, candidates, ctx, ledger, acct, leakage,
        )
    } else {
        hdp_respond(
            chan, cfg, backend, my_points, candidates, ctx, ledger, acct, leakage,
        )
    }
}

/// Round-batched querier side: the same neighborhood query as
/// [`hdp_query_querier`], but the multiplication stage for **all**
/// responder points rides one wire frame each direction and the final
/// decisions run as one batched comparison — 5 rounds per query instead of
/// 5 per responder point.
///
/// Point `i` of the batch draws its masks, nonces, and comparison
/// randomness from the same keyed substreams the sequential
/// [`hdp_query_querier`] loop derives for position `i`, so under the same
/// session seed the count returned, the responder's permutation, and both
/// leakage logs are identical to the unbatched run — and the per-point
/// ciphertext work parallelizes (see [`ppds_smc::parallel`]).
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_query_querier_batch<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    query: &Point,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<usize, SmcError> {
    if responder_count == 0 {
        return Ok(0);
    }
    let dim = query.dim();
    let domain = hdp_domain(cfg, dim);
    let i_val = i64::try_from(query.norm_sq()).expect("ΣA² fits i64 on a validated lattice");
    let cmp_ctx = ctx.narrow("cmp");
    // Stage 1: every responder point's masked products in one frame pair.
    // Every group is the same query vector, once per responder point.
    let ys_groups: Vec<Vec<i64>> = vec![query.coords().to_vec(); responder_count];
    let records: Vec<u64> = (0..responder_count as u64).collect();
    backend.mul_fold_peer(chan, &ys_groups, &records, ctx, acct)?;
    // Stage 2: one batched comparison run for the whole candidate set.
    let values = vec![i_val; responder_count];
    for _ in 0..responder_count {
        ledger.record(cfg.key_bits, domain.n0());
    }
    let within = backend.compare_batch(
        chan,
        Party::Alice,
        &values,
        CmpOp::Leq,
        &domain,
        &cmp_ctx,
        acct,
    )?;
    Ok(within.into_iter().filter(|&b| b).count())
}

/// Round-batched responder side of [`hdp_query_querier_batch`]. The fresh
/// per-query permutation (the Figure 1 defense) draws from the same
/// `"perm"` substream as [`hdp_respond`], and matched own-point leakage
/// events are recorded in the same permuted order. Because the point at
/// permuted position `i` keys all its randomness by `i`, the DGK
/// backend's value-dependent draws no longer shift any other point's
/// stream — the divergence that used to be pinned red by
/// `dgk_backend_parity_on_horizontal` is gone by construction.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn hdp_respond_batch<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    my_points: &[Point],
    candidates: &[usize],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
    leakage: &mut LeakageLog,
) -> Result<usize, SmcError> {
    let dim = my_points.first().map_or(0, Point::dim);
    let domain = hdp_domain(cfg, dim);
    let eps = cfg.params.eps_sq as i64;

    let mut order: Vec<usize> = candidates.to_vec();
    order.shuffle(&mut ctx.narrow("perm").rng());
    let cmp_ctx = ctx.narrow("cmp");
    if order.is_empty() {
        return Ok(0);
    }

    let xs_groups: Vec<Vec<i64>> = order
        .iter()
        .map(|&idx| my_points[idx].coords().to_vec())
        .collect();
    let records: Vec<u64> = (0..order.len() as u64).collect();
    let inner_products = backend.mul_fold_keyholder(chan, &xs_groups, &records, ctx, acct)?;
    let mut j_vals = Vec::with_capacity(order.len());
    for (&idx, &inner_product) in order.iter().zip(&inner_products) {
        ledger.record(cfg.key_bits, domain.n0());
        j_vals.push(eps - my_points[idx].norm_sq() as i64 + 2 * inner_product);
    }
    let within = backend.compare_batch(
        chan,
        Party::Bob,
        &j_vals,
        CmpOp::Leq,
        &domain,
        &cmp_ctx,
        acct,
    )?;
    let mut count = 0usize;
    for (pos, &matched) in within.iter().enumerate() {
        if matched {
            count += 1;
            leakage.record(LeakageEvent::OwnPointMatched {
                point: format!("own#{}", order[pos]),
            });
        }
    }
    Ok(count)
}

/// The Multiplication Protocol response packing this config selects for
/// `dim`-attribute groups: `Some` when `cfg.packing` is on (validated
/// configs always have a layout), `None` otherwise.
pub(crate) fn mul_packing(cfg: &ProtocolConfig, dim: usize) -> Option<ResponsePacking> {
    if cfg.packing {
        crate::domain::mul_response_packing(cfg, dim)
    } else {
        None
    }
}

impl ProtocolConfig {
    /// Mask bound for the Multiplication Protocol's blinding terms:
    /// `C² · 2^σ`, so each masked product `a_k·b_k + r_k` hides its value
    /// with σ bits of statistical slack. These never enter a Yao comparison
    /// (the `r_k` cancel), so σ can be large regardless of the comparator.
    pub fn mul_mask_bound(&self) -> ppds_bigint::BigUint {
        let c2 = (self.coord_bound as u128) * (self.coord_bound as u128);
        ppds_bigint::BigUint::from_u128(c2 << self.mask_bits.min(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::paillier_backend;
    use crate::test_helpers::{ctx, rng};
    use ppds_dbscan::{dist_sq, DbscanParams};
    use ppds_paillier::Keypair;
    use ppds_transport::duplex;
    use std::sync::OnceLock;

    fn querier_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(11)))
    }

    fn responder_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(22)))
    }

    fn run_query(
        cfg: &ProtocolConfig,
        query: Point,
        responder_points: Vec<Point>,
    ) -> (usize, usize, LeakageLog) {
        let (mut qchan, mut rchan) = duplex();
        let nb = responder_points.len();
        let cfg_q = *cfg;
        let q = std::thread::spawn(move || {
            let backend = paillier_backend(&cfg_q, querier_kp(), &responder_kp().public, 2);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            hdp_query_querier(
                &mut qchan,
                &cfg_q,
                &backend,
                &query,
                nb,
                &ctx(100),
                &mut ledger,
                &mut acct,
            )
            .unwrap()
        });
        let backend = paillier_backend(cfg, responder_kp(), &querier_kp().public, 2);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let mut leakage = LeakageLog::new();
        let all: Vec<usize> = (0..responder_points.len()).collect();
        let responder_count = hdp_respond(
            &mut rchan,
            cfg,
            &backend,
            &responder_points,
            &all,
            &ctx(200),
            &mut ledger,
            &mut acct,
            &mut leakage,
        )
        .unwrap();
        (q.join().unwrap(), responder_count, leakage)
    }

    #[test]
    fn counts_match_plain_distance_computation() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 9,
                min_pts: 3,
            },
            10,
        );
        let query = Point::new(vec![0, 0]);
        let responder_points = vec![
            Point::new(vec![1, 1]),   // dist² 2: in
            Point::new(vec![3, 0]),   // dist² 9: in (boundary)
            Point::new(vec![3, 1]),   // dist² 10: out
            Point::new(vec![-2, -2]), // dist² 8: in
            Point::new(vec![10, 10]), // out
        ];
        let expected = responder_points
            .iter()
            .filter(|p| dist_sq(p, &query) <= 9)
            .count();
        let (qc, rc, leakage) = run_query(&cfg, query, responder_points);
        assert_eq!(qc, expected);
        assert_eq!(rc, expected);
        assert_eq!(leakage.count_kind("own_point_matched"), expected);
    }

    fn run_query_batch(
        cfg: &ProtocolConfig,
        query: Point,
        responder_points: Vec<Point>,
        seeds: (u64, u64),
    ) -> (usize, usize, LeakageLog, ppds_transport::MetricsSnapshot) {
        let (mut qchan, mut rchan) = duplex();
        let nb = responder_points.len();
        let cfg_q = *cfg;
        let q = std::thread::spawn(move || {
            let backend = paillier_backend(&cfg_q, querier_kp(), &responder_kp().public, 2);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let count = hdp_query_querier_batch(
                &mut qchan,
                &cfg_q,
                &backend,
                &query,
                nb,
                &ctx(seeds.0),
                &mut ledger,
                &mut acct,
            )
            .unwrap();
            (count, qchan.metrics())
        });
        let backend = paillier_backend(cfg, responder_kp(), &querier_kp().public, 2);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let mut leakage = LeakageLog::new();
        let all: Vec<usize> = (0..responder_points.len()).collect();
        let responder_count = hdp_respond_batch(
            &mut rchan,
            cfg,
            &backend,
            &responder_points,
            &all,
            &ctx(seeds.1),
            &mut ledger,
            &mut acct,
            &mut leakage,
        )
        .unwrap();
        let (querier_count, metrics) = q.join().unwrap();
        (querier_count, responder_count, leakage, metrics)
    }

    #[test]
    fn batched_query_matches_sequential_and_collapses_rounds() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 9,
                min_pts: 3,
            },
            10,
        );
        let query = Point::new(vec![0, 0]);
        let responder_points = vec![
            Point::new(vec![1, 1]),
            Point::new(vec![3, 0]),
            Point::new(vec![3, 1]),
            Point::new(vec![-2, -2]),
            Point::new(vec![10, 10]),
        ];
        // Same seeds as the sequential run: count AND leakage must match
        // (the responder's permutation is drawn at the same stream point).
        let (seq_q, seq_r, seq_leak) = run_query(&cfg, query.clone(), responder_points.clone());
        let batched = cfg.with_batching(true);
        let (bat_q, bat_r, bat_leak, metrics) =
            run_query_batch(&batched, query, responder_points, (100, 200));
        assert_eq!(bat_q, seq_q);
        assert_eq!(bat_r, seq_r);
        assert_eq!(bat_leak, seq_leak, "identical permuted leakage order");
        // 5 rounds per query (2 mul + 3 compare) instead of 5 per point.
        assert_eq!(metrics.total_rounds(), 5);
        assert!(metrics.total_messages() > metrics.total_rounds());
    }

    #[test]
    fn sharing_backend_matches_paillier_counts() {
        use ppds_smc::{DealerTape, SharingBackend};
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 9,
                min_pts: 3,
            },
            10,
        );
        let query = Point::new(vec![0, 0]);
        let responder_points = vec![
            Point::new(vec![1, 1]),
            Point::new(vec![3, 0]),
            Point::new(vec![3, 1]),
            Point::new(vec![-2, -2]),
            Point::new(vec![10, 10]),
        ];
        let expected = responder_points
            .iter()
            .filter(|p| dist_sq(p, &query) <= 9)
            .count();
        for batching in [false, true] {
            let run_cfg = cfg.with_batching(batching);
            let mk = move || SharingBackend {
                tape: DealerTape::from_seed(4242),
                batching,
                dot_mask_bound: 1 << 20,
            };
            let (mut qchan, mut rchan) = duplex();
            let nb = responder_points.len();
            let q_points = query.clone();
            let q = std::thread::spawn(move || {
                let mut ledger = YaoLedger::default();
                let mut acct = SharingLedger::default();
                let count = hdp_query(
                    &mut qchan,
                    &run_cfg,
                    &mk(),
                    &q_points,
                    nb,
                    &ctx(100),
                    &mut ledger,
                    &mut acct,
                )
                .unwrap();
                (count, acct)
            });
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let mut leakage = LeakageLog::new();
            let all: Vec<usize> = (0..responder_points.len()).collect();
            let rc = hdp_serve(
                &mut rchan,
                &run_cfg,
                &mk(),
                &responder_points,
                &all,
                &ctx(200),
                &mut ledger,
                &mut acct,
                &mut leakage,
            )
            .unwrap();
            let (qc, q_acct) = q.join().unwrap();
            assert_eq!(qc, expected, "batching={batching}");
            assert_eq!(rc, expected, "batching={batching}");
            assert_eq!(leakage.count_kind("own_point_matched"), expected);
            assert_eq!(q_acct.compares, nb as u64);
            assert!(q_acct.triples > 0, "folds consume Beaver triples");
        }
    }

    #[test]
    fn batched_empty_responder_set() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            5,
        );
        let (qc, rc, leakage, metrics) =
            run_query_batch(&cfg, Point::new(vec![0, 0]), vec![], (100, 200));
        assert_eq!(qc, 0);
        assert_eq!(rc, 0);
        assert!(leakage.is_empty());
        assert_eq!(metrics.total_rounds(), 0);
    }

    #[test]
    fn works_with_negative_coordinates_and_yao() {
        let cfg = ProtocolConfig::new_with_yao(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            3,
        );
        let query = Point::new(vec![-2, 1]);
        let pts = vec![Point::new(vec![-1, 1]), Point::new(vec![2, -2])];
        let (qc, rc, _) = run_query(&cfg, query, pts);
        assert_eq!(qc, 1);
        assert_eq!(rc, 1);
    }

    #[test]
    fn empty_responder_set() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            5,
        );
        let (qc, rc, leakage) = run_query(&cfg, Point::new(vec![0, 0]), vec![]);
        assert_eq!(qc, 0);
        assert_eq!(rc, 0);
        assert!(leakage.is_empty());
    }

    #[test]
    fn ledger_counts_one_comparison_per_pair() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 2,
            },
            5,
        );
        let (mut qchan, mut rchan) = duplex();
        let q = std::thread::spawn(move || {
            let backend = paillier_backend(&cfg, querier_kp(), &responder_kp().public, 2);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let c = hdp_query_querier(
                &mut qchan,
                &cfg,
                &backend,
                &Point::new(vec![0, 0]),
                3,
                &ctx(7),
                &mut ledger,
                &mut acct,
            )
            .unwrap();
            (c, ledger, acct)
        });
        let backend = paillier_backend(&cfg, responder_kp(), &querier_kp().public, 2);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let mut leakage = LeakageLog::new();
        let pts = vec![
            Point::new(vec![0, 1]),
            Point::new(vec![4, 4]),
            Point::new(vec![1, 0]),
        ];
        hdp_respond(
            &mut rchan,
            &cfg,
            &backend,
            &pts,
            &[0, 1, 2],
            &ctx(8),
            &mut ledger,
            &mut acct,
            &mut leakage,
        )
        .unwrap();
        let (_, q_ledger, q_acct) = q.join().unwrap();
        assert_eq!(q_ledger.comparisons, 3);
        assert_eq!(ledger.comparisons, 3);
        assert!(q_ledger.modeled_bytes > 0);
        assert_eq!(
            q_acct,
            SharingLedger::default(),
            "Paillier substrate leaves the sharing ledger untouched"
        );
    }
}
