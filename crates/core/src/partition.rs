//! Data partition models: Figures 2, 3 and 4 of the paper.
//!
//! Horizontal partitioning needs no type of its own (each party simply holds
//! a `Vec<Point>`); vertical and arbitrary partitioning carry structure that
//! must be kept consistent between the parties, so they get types with
//! validated constructors.
//!
//! Ownership *metadata* (who holds which attribute of which record) is
//! public in this model — the paper assumes both parties know the schema
//! and, for arbitrary partitioning, the ownership pattern; only attribute
//! *values* are private.

use ppds_dbscan::Point;
use rand::Rng;

/// Vertically partitioned data (Figure 3): `n` records of `m` attributes;
/// Alice holds attributes `0..split`, Bob holds `split..m`, for every
/// record.
#[derive(Debug, Clone)]
pub struct VerticalPartition {
    /// Alice's attribute slice of each record (dimension = `split`).
    pub alice: Vec<Point>,
    /// Bob's attribute slice of each record (dimension = `m - split`).
    pub bob: Vec<Point>,
}

impl VerticalPartition {
    /// Splits full records at attribute index `split`.
    ///
    /// # Panics
    /// Panics if `split` is 0 or ≥ the record dimension (each party must
    /// own at least one attribute), or if records disagree on dimension.
    pub fn split(records: &[Point], split: usize) -> Self {
        assert!(!records.is_empty(), "cannot partition zero records");
        let dim = records[0].dim();
        assert!(
            split > 0 && split < dim,
            "split {split} must leave both parties at least one of {dim} attributes"
        );
        let mut alice = Vec::with_capacity(records.len());
        let mut bob = Vec::with_capacity(records.len());
        for r in records {
            assert_eq!(r.dim(), dim, "records must share a dimension");
            alice.push(Point::new(r.coords()[..split].to_vec()));
            bob.push(Point::new(r.coords()[split..].to_vec()));
        }
        VerticalPartition { alice, bob }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.alice.len()
    }

    /// `true` if there are no records.
    pub fn is_empty(&self) -> bool {
        self.alice.is_empty()
    }

    /// Rejoins the slices into full records (test helper — a real party
    /// could never call this).
    pub fn reconstruct(&self) -> Vec<Point> {
        self.alice
            .iter()
            .zip(&self.bob)
            .map(|(a, b)| {
                let mut coords = a.coords().to_vec();
                coords.extend_from_slice(b.coords());
                Point::new(coords)
            })
            .collect()
    }
}

/// Which party owns one attribute of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// The cell belongs to Alice.
    Alice,
    /// The cell belongs to Bob.
    Bob,
}

/// Arbitrarily partitioned data (Figure 4): every `(record, attribute)`
/// cell is owned by exactly one party. The ownership matrix is public; the
/// values are private.
#[derive(Debug, Clone)]
pub struct ArbitraryPartition {
    /// Public ownership matrix, `n × m`.
    pub ownership: Vec<Vec<Owner>>,
    /// Alice's private values: `Some` exactly where she owns the cell.
    pub alice_values: Vec<Vec<Option<i64>>>,
    /// Bob's private values: `Some` exactly where he owns the cell.
    pub bob_values: Vec<Vec<Option<i64>>>,
}

impl ArbitraryPartition {
    /// Partitions full records according to `ownership`.
    ///
    /// # Panics
    /// Panics if shapes disagree.
    pub fn from_records(records: &[Point], ownership: Vec<Vec<Owner>>) -> Self {
        assert_eq!(
            records.len(),
            ownership.len(),
            "one ownership row per record"
        );
        let mut alice_values = Vec::with_capacity(records.len());
        let mut bob_values = Vec::with_capacity(records.len());
        for (r, owners) in records.iter().zip(&ownership) {
            assert_eq!(r.dim(), owners.len(), "one owner per attribute");
            let mut a_row = Vec::with_capacity(owners.len());
            let mut b_row = Vec::with_capacity(owners.len());
            for (&value, &owner) in r.coords().iter().zip(owners) {
                match owner {
                    Owner::Alice => {
                        a_row.push(Some(value));
                        b_row.push(None);
                    }
                    Owner::Bob => {
                        a_row.push(None);
                        b_row.push(Some(value));
                    }
                }
            }
            alice_values.push(a_row);
            bob_values.push(b_row);
        }
        ArbitraryPartition {
            ownership,
            alice_values,
            bob_values,
        }
    }

    /// Partitions records with uniformly random per-cell ownership.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, records: &[Point]) -> Self {
        let ownership = records
            .iter()
            .map(|r| {
                (0..r.dim())
                    .map(|_| {
                        if rng.random::<bool>() {
                            Owner::Alice
                        } else {
                            Owner::Bob
                        }
                    })
                    .collect()
            })
            .collect();
        Self::from_records(records, ownership)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.ownership.len()
    }

    /// `true` if there are no records.
    pub fn is_empty(&self) -> bool {
        self.ownership.is_empty()
    }

    /// Attribute count.
    pub fn dim(&self) -> usize {
        self.ownership.first().map_or(0, |row| row.len())
    }

    /// Rejoins both views into full records (test helper).
    pub fn reconstruct(&self) -> Vec<Point> {
        self.alice_values
            .iter()
            .zip(&self.bob_values)
            .map(|(a_row, b_row)| {
                Point::new(
                    a_row
                        .iter()
                        .zip(b_row)
                        .map(|(a, b)| a.or(*b).expect("every cell owned by someone"))
                        .collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::rng;

    fn records() -> Vec<Point> {
        vec![
            Point::new(vec![1, 2, 3, 4]),
            Point::new(vec![5, 6, 7, 8]),
            Point::new(vec![-1, -2, -3, -4]),
        ]
    }

    #[test]
    fn vertical_split_and_reconstruct() {
        let recs = records();
        for split in 1..4 {
            let part = VerticalPartition::split(&recs, split);
            assert_eq!(part.len(), 3);
            assert!(!part.is_empty());
            assert_eq!(part.alice[0].dim(), split);
            assert_eq!(part.bob[0].dim(), 4 - split);
            assert_eq!(part.reconstruct(), recs, "split = {split}");
        }
    }

    #[test]
    #[should_panic(expected = "must leave both parties")]
    fn vertical_split_rejects_empty_side() {
        let _ = VerticalPartition::split(&records(), 0);
    }

    #[test]
    #[should_panic(expected = "must leave both parties")]
    fn vertical_split_rejects_full_side() {
        let _ = VerticalPartition::split(&records(), 4);
    }

    #[test]
    fn arbitrary_from_records_partitions_cells() {
        let recs = records();
        let ownership = vec![
            vec![Owner::Alice, Owner::Bob, Owner::Bob, Owner::Alice],
            vec![Owner::Bob, Owner::Bob, Owner::Bob, Owner::Bob],
            vec![Owner::Alice, Owner::Alice, Owner::Alice, Owner::Alice],
        ];
        let part = ArbitraryPartition::from_records(&recs, ownership);
        assert_eq!(part.alice_values[0], vec![Some(1), None, None, Some(4)]);
        assert_eq!(part.bob_values[0], vec![None, Some(2), Some(3), None]);
        assert_eq!(part.alice_values[1], vec![None; 4]);
        assert_eq!(part.bob_values[2], vec![None; 4]);
        assert_eq!(part.reconstruct(), recs);
        assert_eq!(part.dim(), 4);
        assert_eq!(part.len(), 3);
    }

    #[test]
    fn random_partition_reconstructs() {
        let recs = records();
        let mut r = rng(5);
        for _ in 0..10 {
            let part = ArbitraryPartition::random(&mut r, &recs);
            assert_eq!(part.reconstruct(), recs);
            // Complementarity: exactly one side owns each cell.
            for (a_row, b_row) in part.alice_values.iter().zip(&part.bob_values) {
                for (a, b) in a_row.iter().zip(b_row) {
                    assert!(a.is_some() ^ b.is_some());
                }
            }
        }
    }

    #[test]
    fn vertical_matches_arbitrary_special_case() {
        // A vertical partition is the arbitrary partition whose ownership is
        // constant per column (Figure 4's identity).
        let recs = records();
        let vertical = VerticalPartition::split(&recs, 2);
        let ownership = vec![vec![Owner::Alice, Owner::Alice, Owner::Bob, Owner::Bob]; recs.len()];
        let arbitrary = ArbitraryPartition::from_records(&recs, ownership);
        for i in 0..recs.len() {
            let a_vals: Vec<i64> = arbitrary.alice_values[i]
                .iter()
                .flatten()
                .copied()
                .collect();
            assert_eq!(a_vals, vertical.alice[i].coords());
        }
    }
}
