#![warn(missing_docs)]

//! **Privacy preserving distributed DBSCAN clustering** — the complete
//! protocol suite of Liu, Xiong, Luo & Huang (EDBT/ICDT Workshops 2012;
//! extended in *Transactions on Data Privacy* 6, 2013).
//!
//! Two semi-honest parties, Alice and Bob, cluster the union of their
//! private data without revealing records to each other. Four protocol
//! families are implemented, one module each:
//!
//! * [`horizontal`] — Algorithms 3 & 4 over *horizontally* partitioned data
//!   (each party owns complete records). Each party runs DBSCAN over its own
//!   points; neighborhood densities are augmented with the peer's matching
//!   count via protocol HDP ([`hdp`]), with the peer's point order freshly
//!   permuted per query so neighborhoods cannot be intersected (the
//!   Figure 1 attack on Kumar et al.).
//! * [`vertical`] — Algorithms 5 & 6 over *vertically* partitioned data
//!   (each party owns an attribute slice of every record). Both parties run
//!   the identical DBSCAN loop in lockstep; each distance test is one
//!   Yao comparison via protocol VDP ([`vdp`]), and both end with the same
//!   clustering of all records.
//! * [`arbitrary`] — §4.4: per-record, per-attribute ownership. Each
//!   distance decomposes into a vertical part (local) and a horizontal part
//!   (Multiplication Protocol), combined in one comparison ([`adp`]).
//! * [`enhanced`] — Section 5 (Algorithms 7 & 8): the horizontal protocol
//!   with the neighbor-count leakage removed. Distances become additive
//!   secret shares via a dot-product Multiplication Protocol; the k-th
//!   smallest shared distance (k = MinPts − |own neighbors|) is selected
//!   with either of the paper's two algorithms and compared to Eps², so the
//!   peer's neighbor count never surfaces — only the core-point bit.
//!
//! Beyond the paper's two-party scope, [`multiparty`] implements the
//! K-party generalization its conclusion sketches as future work (pairwise
//! sessions over a full mesh, K deterministic querier phases), and
//! [`kumar`] implements the *insecure* Kumar et al. \[14\] baseline the paper
//! argues against — with an executable Figure 1 intersection attack that
//! demonstrates exactly why the permutation defense matters.
//!
//! # The session API
//!
//! All five protocol modes run through one typed entry point: the
//! [`session::Participant`] builder. A participant describes one party's
//! side — config, role, private [`session::PartyData`] view, optional
//! keypair, deterministic seed — and [`session::Participant::run`]
//! executes it over any [`ppds_transport::Channel`] (in-memory or TCP),
//! after a versioned [`session::Hello`] handshake that cross-checks every
//! public protocol parameter and rejects disagreements with a typed
//! [`CoreError::HandshakeMismatch`]. The returned
//! [`session::SessionOutcome`] wraps this party's [`driver::PartyOutput`]
//! — the clustering, the exact [`ppds_smc::LeakageLog`] of what the party
//! learned (tested against Theorems 9/10/11), wire-level traffic counters,
//! and a [`config::YaoLedger`] with the modeled faithful-Yao cost — plus
//! the negotiated [`session::SessionMeta`].
//!
//! The original free-function drivers (`run_horizontal_pair` & co.) remain
//! as deprecated wrappers with byte-identical outputs; the engine-facing
//! batch surface is [`driver::SessionRequest`]/[`driver::run_session`].
//!
//! ```
//! use ppdbscan::session::{run_participants, Participant, PartyData};
//! use ppdbscan::ProtocolConfig;
//! use ppds_dbscan::{DbscanParams, Point};
//! use ppds_smc::Party;
//!
//! let cfg = ProtocolConfig::new(DbscanParams { eps_sq: 4, min_pts: 3 }, 10);
//! let alice = Participant::new(cfg)
//!     .role(Party::Alice)
//!     .data(PartyData::Horizontal(vec![
//!         Point::new(vec![0, 0]),
//!         Point::new(vec![1, 1]),
//!     ]))
//!     .seed(1);
//! let bob = Participant::new(cfg)
//!     .role(Party::Bob)
//!     .data(PartyData::Horizontal(vec![
//!         Point::new(vec![0, 1]),
//!         Point::new(vec![9, 9]),
//!     ]))
//!     .seed(2);
//! let (alice_out, _bob_out) = run_participants(alice, bob).unwrap();
//! println!("Alice sees {} clusters", alice_out.output.clustering.num_clusters);
//! ```

pub mod adp;
pub mod arbitrary;
pub(crate) mod backend;
pub mod config;
pub mod domain;
pub mod driver;
pub mod enhanced;
pub mod error;
pub mod hdp;
pub mod horizontal;
pub mod kumar;
pub mod multiparty;
pub mod partition;
pub(crate) mod prune;
pub mod session;
pub mod vdp;
pub mod vertical;

pub use config::ProtocolConfig;
#[allow(deprecated)]
pub use driver::{
    run_arbitrary_pair, run_enhanced_pair, run_horizontal_pair, run_session, run_vertical_pair,
    PartyOutput, SessionRequest,
};
pub use error::CoreError;
#[allow(deprecated)]
pub use multiparty::run_multiparty_horizontal;
pub use partition::{ArbitraryPartition, VerticalPartition};
pub use ppds_smc::{ProtocolContext, RecordId};
pub use session::{
    run_data_pair, run_participants, Hello, Mode, Participant, PartyData, SessionMeta,
    SessionOutcome, WIRE_VERSION,
};

#[cfg(test)]
pub(crate) mod test_helpers {
    use ppds_smc::ProtocolContext;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    pub fn ctx(seed: u64) -> ProtocolContext {
        ProtocolContext::new(seed)
    }
}
