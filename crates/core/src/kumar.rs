//! The Kumar et al. \[14\]-style **insecure baseline** and the Figure 1
//! intersection attack against it.
//!
//! The paper's second motivating contribution is that the prior horizontal
//! protocol of Kumar & Rangan (ADMA 2007) "poses significant privacy risks
//! of identifying individual records from the other party": the responder
//! learns, *per identified query record*, which of his points it neighbors
//! — so he can intersect Eps-disks (Figure 1) and localize the record.
//!
//! This module implements that baseline faithfully enough to attack: it is
//! the basic horizontal protocol with two deliberate weaknesses —
//!
//! 1. the querier sends a **stable query identifier** with every
//!    neighborhood query, and
//! 2. the responder's points are processed **in fixed order with per-point
//!    result bits tied to that identifier** (no per-query permutation),
//!
//! so the responder's leakage log fills with
//! [`LeakageEvent::LinkedNeighborBit`] records. [`intersection_attack`]
//! then replays Figure 1 *from an actual protocol transcript*: for each
//! query id it computes the set of lattice positions consistent with every
//! observed bit. The `figure1_attack_executes_on_transcripts` tests compare
//! the result against the honest protocol, where the same adversary is
//! stuck with disk unions.
//!
//! **Never use this protocol for anything but measurement.**

use crate::config::{ProtocolConfig, YaoLedger};
use crate::driver::PartyOutput;
use crate::error::CoreError;
use crate::session::{establish, HandshakeProfile, Mode};
use ppds_bigint::BigInt;
use ppds_dbscan::index::{LinearIndex, NeighborIndex};
use ppds_dbscan::{dist_sq, Clustering, Label, Point};
use ppds_paillier::{Keypair, PublicKey};
use ppds_smc::compare::{compare_alice, compare_bob, CmpOp};
use ppds_smc::multiplication::{mul_batch_keyholder, mul_batch_peer, zero_sum_masks};
use ppds_smc::{LeakageEvent, LeakageLog, Party, ProtocolContext, SmcError};
use ppds_transport::Channel;
use std::collections::{BTreeMap, VecDeque};

const TAG_DONE: u8 = 0;
const TAG_QUERY: u8 = 1;

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Unclassified,
    Noise,
    Cluster(usize),
}

/// Querier side of one linkable neighborhood query (the [14]-style leak:
/// the query carries a stable id).
#[allow(clippy::too_many_arguments)]
fn kumar_query<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    responder_pk: &PublicKey,
    query: &Point,
    query_id: u64,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<usize, SmcError> {
    chan.send(&query_id)?; // the deliberate weakness
    let dim = query.dim();
    let domain = crate::domain::hdp_domain(cfg, dim);
    let i_val = i64::try_from(query.norm_sq()).expect("ΣA² fits i64");
    let ys: Vec<BigInt> = query
        .coords()
        .iter()
        .map(|&c| BigInt::from_i64(c))
        .collect();
    let (mask_ctx, mul_ctx, cmp_ctx) = (ctx.narrow("mask"), ctx.narrow("mul"), ctx.narrow("cmp"));
    let mut count = 0usize;
    for pos in 0..responder_count {
        let masks = zero_sum_masks(mask_ctx.rng_for(pos as u64), dim, &cfg.mul_mask_bound());
        mul_batch_peer(
            chan,
            responder_pk,
            &ys,
            &masks,
            None,
            &mul_ctx.at(pos as u64),
        )?;
        ledger.record(cfg.key_bits, domain.n0());
        count += compare_alice(
            cfg.comparator,
            chan,
            my_keypair,
            i_val,
            CmpOp::Leq,
            &domain,
            false,
            &cmp_ctx.at(pos as u64),
        )? as usize;
    }
    Ok(count)
}

/// Responder side: fixed point order, bits recorded against the query id.
#[allow(clippy::too_many_arguments)]
fn kumar_respond<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    querier_pk: &PublicKey,
    my_points: &[Point],
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    leakage: &mut LeakageLog,
) -> Result<(), SmcError> {
    let query_id: u64 = chan.recv()?;
    let dim = my_points.first().map_or(0, Point::dim);
    let domain = crate::domain::hdp_domain(cfg, dim);
    let eps = cfg.params.eps_sq as i64;
    let (mul_ctx, cmp_ctx) = (ctx.narrow("mul"), ctx.narrow("cmp"));
    for (idx, point) in my_points.iter().enumerate() {
        let xs: Vec<BigInt> = point
            .coords()
            .iter()
            .map(|&c| BigInt::from_i64(c))
            .collect();
        let ws = mul_batch_keyholder(chan, my_keypair, &xs, None, &mul_ctx.at(idx as u64))?;
        let inner: i64 = ws
            .iter()
            .fold(BigInt::zero(), |acc, w| &acc + w)
            .to_i64()
            .ok_or_else(|| SmcError::protocol("inner product overflows i64"))?;
        let j_val = eps - point.norm_sq() as i64 + 2 * inner;
        ledger.record(cfg.key_bits, domain.n0());
        let within = compare_bob(
            cfg.comparator,
            chan,
            querier_pk,
            j_val,
            CmpOp::Leq,
            &domain,
            false,
            &cmp_ctx.at(idx as u64),
        )?;
        leakage.record(LeakageEvent::LinkedNeighborBit {
            query_id,
            point: idx as u64,
            within,
        });
    }
    Ok(())
}

/// One party's full run of the Kumar-style baseline (structure identical to
/// the honest horizontal protocol; only the linkability differs).
pub fn kumar_party<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_points: &[Point],
    role: Party,
    ctx: &ProtocolContext,
) -> Result<PartyOutput, CoreError> {
    let dim = my_points.first().map_or(0, Point::dim);
    cfg.validate(dim.max(1))?;
    crate::horizontal::check_points(cfg, my_points)?;
    let keypair = Keypair::generate(cfg.key_bits, &mut ctx.narrow("keygen").rng());
    let session = establish(
        chan,
        cfg,
        keypair,
        role,
        &HandshakeProfile {
            mode: Mode::KumarBaseline,
            n: my_points.len(),
            dim,
            dim_must_match: true,
        },
        ctx,
    )?;

    let mut leakage = LeakageLog::new();
    let mut ledger = YaoLedger::default();
    let clustering;

    let query_ctx = ctx.narrow("query");
    let serve_ctx = ctx.narrow("serve");
    let run_query_phase = |chan: &mut C, leakage: &mut LeakageLog, ledger: &mut YaoLedger| {
        let index = LinearIndex::new(my_points, cfg.params.eps_sq);
        let mut states = vec![State::Unclassified; my_points.len()];
        let mut next_cluster = 0usize;
        let mut issued = 0u64;
        let mut core_test = |chan: &mut C,
                             leakage: &mut LeakageLog,
                             ledger: &mut YaoLedger,
                             idx: usize,
                             own: usize|
         -> Result<bool, CoreError> {
            chan.send(&TAG_QUERY)?;
            let qctx = query_ctx.at(issued);
            issued += 1;
            let count = kumar_query(
                chan,
                cfg,
                &session.my_keypair,
                &session.peer_pk,
                &my_points[idx],
                idx as u64,
                session.peer_n,
                &qctx,
                ledger,
            )?;
            leakage.record(LeakageEvent::NeighborCount {
                query: format!("own#{idx}"),
                count: count as u64,
            });
            Ok(own + count >= cfg.params.min_pts)
        };
        for i in 0..my_points.len() {
            if states[i] != State::Unclassified {
                continue;
            }
            let seeds = index.region_query(&my_points[i]);
            if !core_test(chan, leakage, ledger, i, seeds.len())? {
                states[i] = State::Noise;
                continue;
            }
            let cluster_id = next_cluster;
            next_cluster += 1;
            let mut queue: VecDeque<usize> = VecDeque::new();
            for &s in &seeds {
                states[s] = State::Cluster(cluster_id);
                if s != i {
                    queue.push_back(s);
                }
            }
            while let Some(current) = queue.pop_front() {
                let result = index.region_query(&my_points[current]);
                if core_test(chan, leakage, ledger, current, result.len())? {
                    for &neighbor in &result {
                        match states[neighbor] {
                            State::Unclassified => {
                                queue.push_back(neighbor);
                                states[neighbor] = State::Cluster(cluster_id);
                            }
                            State::Noise => states[neighbor] = State::Cluster(cluster_id),
                            State::Cluster(_) => {}
                        }
                    }
                }
            }
        }
        chan.send(&TAG_DONE)?;
        let labels = states
            .into_iter()
            .map(|s| match s {
                State::Unclassified => unreachable!("all classified"),
                State::Noise => Label::Noise,
                State::Cluster(id) => Label::Cluster(id),
            })
            .collect();
        Ok::<_, CoreError>(Clustering {
            labels,
            num_clusters: next_cluster,
        })
    };
    let run_respond_phase = |chan: &mut C, leakage: &mut LeakageLog, ledger: &mut YaoLedger| {
        let mut served = 0u64;
        loop {
            let tag: u8 = chan.recv()?;
            match tag {
                TAG_DONE => return Ok::<_, CoreError>(()),
                TAG_QUERY => {
                    let qctx = serve_ctx.at(served);
                    served += 1;
                    kumar_respond(
                        chan,
                        cfg,
                        &session.my_keypair,
                        &session.peer_pk,
                        my_points,
                        &qctx,
                        ledger,
                        leakage,
                    )?
                }
                other => {
                    return Err(CoreError::Smc(SmcError::protocol(format!(
                        "unexpected control tag {other}"
                    ))))
                }
            }
        }
    };

    match role {
        Party::Alice => {
            clustering = Some(run_query_phase(chan, &mut leakage, &mut ledger)?);
            run_respond_phase(chan, &mut leakage, &mut ledger)?;
        }
        Party::Bob => {
            run_respond_phase(chan, &mut leakage, &mut ledger)?;
            clustering = Some(run_query_phase(chan, &mut leakage, &mut ledger)?);
        }
    }
    Ok(PartyOutput {
        clustering: clustering.expect("query phase ran"),
        leakage,
        traffic: chan.metrics(),
        yao: ledger,
        sharing: Default::default(),
    })
}

/// Runs the baseline for both parties over an in-memory pair.
pub fn run_kumar_pair(
    cfg: &ProtocolConfig,
    alice_points: &[Point],
    bob_points: &[Point],
    mut rng_a: rand::rngs::StdRng,
    mut rng_b: rand::rngs::StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    let (ctx_a, ctx_b) = (
        ProtocolContext::from_rng(&mut rng_a),
        ProtocolContext::from_rng(&mut rng_b),
    );
    crate::driver::run_pair(
        |mut chan| kumar_party(&mut chan, cfg, alice_points, Party::Alice, &ctx_a),
        |mut chan| kumar_party(&mut chan, cfg, bob_points, Party::Bob, &ctx_b),
    )
}

/// The Figure 1 attack, run offline on a responder's transcript: for every
/// query id seen, count the lattice positions (within `[-bound, bound]²…`)
/// consistent with *all* observed linked bits. Smaller is worse for the
/// victim. Returns `query_id → feasible position count`.
pub fn intersection_attack(
    my_points: &[Point],
    leakage: &LeakageLog,
    eps_sq: u64,
    bound: i64,
) -> BTreeMap<u64, u64> {
    // Gather per-query bit vectors.
    let mut bits: BTreeMap<u64, Vec<(usize, bool)>> = BTreeMap::new();
    for event in leakage.events() {
        if let LeakageEvent::LinkedNeighborBit {
            query_id,
            point,
            within,
        } = event
        {
            bits.entry(*query_id)
                .or_default()
                .push((*point as usize, *within));
        }
    }
    let dim = my_points.first().map_or(0, Point::dim);
    assert_eq!(dim, 2, "the lattice sweep implemented for 2-D scenarios");

    let mut result = BTreeMap::new();
    for (query_id, constraints) in bits {
        let mut feasible = 0u64;
        for x in -bound..=bound {
            for y in -bound..=bound {
                let candidate = Point::new(vec![x, y]);
                let consistent = constraints.iter().all(|&(idx, within)| {
                    (dist_sq(&my_points[idx], &candidate) <= eps_sq) == within
                });
                feasible += consistent as u64;
            }
        }
        result.insert(query_id, feasible);
    }
    result
}

/// The best the same adversary can do against the *honest* protocol: each
/// of his matched points constrains the unknown record only to the union of
/// matched disks (bits are unlinkable across his points, so no intersection
/// is sound). Returns the union size for reference.
pub fn unlinkable_feasible_region(my_points: &[Point], eps_sq: u64, bound: i64) -> u64 {
    let mut feasible = 0u64;
    for x in -bound..=bound {
        for y in -bound..=bound {
            let candidate = Point::new(vec![x, y]);
            let hit = my_points.iter().any(|p| dist_sq(p, &candidate) <= eps_sq);
            feasible += hit as u64;
        }
    }
    feasible
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::driver::run_horizontal_pair;
    use crate::test_helpers::rng;
    use ppds_dbscan::{dbscan_with_external_density, DbscanParams};

    fn figure1_setup() -> (Vec<Point>, Vec<Point>, ProtocolConfig) {
        let alice = vec![Point::new(vec![8, 5])]; // in all three disks
        let bob = vec![
            Point::new(vec![0, 0]),
            Point::new(vec![16, 0]),
            Point::new(vec![8, 14]),
        ];
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 100,
                min_pts: 5, // force noise: only the queries matter
            },
            64,
        );
        (alice, bob, cfg)
    }

    #[test]
    fn baseline_still_clusters_correctly() {
        // The weakness is in leakage, not in the computed output.
        let alice = vec![
            Point::new(vec![0, 0]),
            Point::new(vec![1, 1]),
            Point::new(vec![20, 20]),
        ];
        let bob = vec![Point::new(vec![0, 1]), Point::new(vec![21, 20])];
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 4,
                min_pts: 3,
            },
            25,
        );
        let (a, b) = run_kumar_pair(&cfg, &alice, &bob, rng(1), rng(2)).unwrap();
        assert_eq!(
            a.clustering,
            dbscan_with_external_density(&alice, &bob, cfg.params)
        );
        assert_eq!(
            b.clustering,
            dbscan_with_external_density(&bob, &alice, cfg.params)
        );
    }

    #[test]
    fn figure1_attack_executes_on_transcripts() {
        let (alice, bob, cfg) = figure1_setup();
        let (_, bob_out) = run_kumar_pair(&cfg, &alice, &bob, rng(3), rng(4)).unwrap();

        // Bob received one linked bit per (query, own point).
        assert_eq!(bob_out.leakage.count_kind("linked_neighbor_bit"), 3);

        let localized = intersection_attack(&bob, &bob_out.leakage, 100, 40);
        let count = localized[&0];
        // Eps = 10 geometry: the three-disk intersection has 3 lattice
        // points (F1 table) — Bob pinned Alice's record to 3 candidates.
        assert_eq!(count, 3, "attack must localize the record");

        // Against the honest protocol the same adversary gets no linkable
        // bits at all…
        #[allow(deprecated)]
        let (_, honest_bob) = run_horizontal_pair(&cfg, &alice, &bob, rng(5), rng(6)).unwrap();
        assert_eq!(honest_bob.leakage.count_kind("linked_neighbor_bit"), 0);
        // …and his best unlinkable inference is the union of his disks.
        let union = unlinkable_feasible_region(&bob, 100, 40);
        assert!(
            union > 100 * count,
            "honest protocol leaves ≥ 100x more uncertainty ({union} vs {count})"
        );
    }

    #[test]
    fn attack_uses_negative_bits_too() {
        // A query outside B3's disk: the "not within" bit carves the
        // feasible set down to (disk1 ∩ disk2) \ disk3.
        let alice = vec![Point::new(vec![8, -2])]; // in disks 1,2; not 3
        let bob = vec![
            Point::new(vec![0, 0]),
            Point::new(vec![16, 0]),
            Point::new(vec![8, 14]),
        ];
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 100,
                min_pts: 5,
            },
            64,
        );
        let (_, bob_out) = run_kumar_pair(&cfg, &alice, &bob, rng(7), rng(8)).unwrap();
        let localized = intersection_attack(&bob, &bob_out.leakage, 100, 40);
        let feasible = localized[&0];
        // Exact reference count by direct enumeration.
        let mut expect = 0u64;
        for x in -40i64..=40 {
            for y in -40i64..=40 {
                let p = Point::new(vec![x, y]);
                let d1 = dist_sq(&bob[0], &p) <= 100;
                let d2 = dist_sq(&bob[1], &p) <= 100;
                let d3 = dist_sq(&bob[2], &p) <= 100;
                expect += (d1 && d2 && !d3) as u64;
            }
        }
        assert_eq!(feasible, expect);
        assert!(feasible > 0, "the true record position stays feasible");
    }

    #[test]
    fn multiple_queries_localize_independently() {
        let alice = vec![Point::new(vec![8, 5]), Point::new(vec![-20, -20])];
        let bob = vec![Point::new(vec![0, 0]), Point::new(vec![16, 0])];
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 100,
                min_pts: 6,
            },
            64,
        );
        let (_, bob_out) = run_kumar_pair(&cfg, &alice, &bob, rng(9), rng(10)).unwrap();
        let localized = intersection_attack(&bob, &bob_out.leakage, 100, 40);
        assert_eq!(localized.len(), 2, "one feasible set per identified query");
        // Query 0 (in both disks) is far more localized than query 1
        // (outside both — only negative constraints).
        assert!(localized[&0] < localized[&1]);
    }
}
