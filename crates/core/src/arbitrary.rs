//! The arbitrary-partition DBSCAN driver (§4.4).
//!
//! "Since the arbitrarily partitioned data could be decomposed into
//! horizontally and vertically partitioned data, …, the algorithm for the
//! arbitrarily partitioned data is the combination of algorithms for
//! horizontally and vertically partitioned data." — concretely: the control
//! structure is the vertical protocol's shared lockstep loop (both parties
//! hold a stake in *every* record, so both learn every label, per §3.3),
//! while each distance test uses the ADP decomposition ([`crate::adp`]) that
//! routes split attribute pairs through the Multiplication Protocol.

use crate::adp::{adp_compare_set_alice, adp_compare_set_bob, PairView};
use crate::config::{ProtocolConfig, YaoLedger};
use crate::driver::{establish, PartyOutput, MODE_ARBITRARY};
use crate::error::CoreError;
use crate::vertical::lockstep_dbscan;
use ppds_smc::{LeakageLog, Party};
use ppds_transport::Channel;
use rand::Rng;

/// One party's full run over arbitrarily partitioned data. `my_values` is
/// this party's view: per record, `Some(value)` exactly at the attributes
/// it owns (see [`crate::partition::ArbitraryPartition`]).
pub fn arbitrary_party<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_values: &[Vec<Option<i64>>],
    role: Party,
    rng: &mut R,
) -> Result<PartyOutput, CoreError> {
    let dim = my_values.first().map_or(1, Vec::len);
    cfg.validate(dim)?;
    for (i, row) in my_values.iter().enumerate() {
        if row.len() != dim {
            return Err(CoreError::config(format!(
                "record {i} has {} attributes, expected {dim}",
                row.len()
            )));
        }
        for value in row.iter().flatten() {
            if value.abs() > cfg.coord_bound {
                return Err(CoreError::config(format!(
                    "record {i} exceeds the agreed coordinate bound {}",
                    cfg.coord_bound
                )));
            }
        }
    }
    let session = establish(
        chan,
        cfg,
        role,
        MODE_ARBITRARY,
        my_values.len(),
        dim,
        true,
        rng,
    )?;
    if session.peer_n != my_values.len() {
        return Err(CoreError::mismatch(format!(
            "record counts differ: mine {} vs peer {}",
            my_values.len(),
            session.peer_n
        )));
    }

    let mut leakage = LeakageLog::new();
    let mut ledger = YaoLedger::default();
    let clustering = {
        let ledger = &mut ledger;
        let dist_leq_set = |x: usize, ys: &[usize]| -> Result<Vec<bool>, CoreError> {
            let views: Vec<PairView<'_>> = ys
                .iter()
                .map(|&y| PairView {
                    x: &my_values[x],
                    y: &my_values[y],
                })
                .collect();
            let result = match role {
                Party::Alice => adp_compare_set_alice(
                    chan,
                    cfg,
                    &session.my_keypair,
                    &session.peer_pk,
                    &views,
                    rng,
                    ledger,
                )?,
                Party::Bob => adp_compare_set_bob(
                    chan,
                    cfg,
                    &session.my_keypair,
                    &session.peer_pk,
                    &views,
                    rng,
                    ledger,
                )?,
            };
            Ok(result)
        };
        lockstep_dbscan(my_values.len(), cfg.params, dist_leq_set, &mut leakage)?
    };

    Ok(PartyOutput {
        clustering,
        leakage,
        traffic: chan.metrics(),
        yao: ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_arbitrary_pair;
    use crate::partition::{ArbitraryPartition, Owner};
    use crate::test_helpers::rng;
    use ppds_dbscan::{dbscan, DbscanParams, Point};

    fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
        ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound)
    }

    fn records() -> Vec<Point> {
        vec![
            Point::new(vec![0, 0, 1]),
            Point::new(vec![1, 0, 0]),
            Point::new(vec![0, 1, 1]),
            Point::new(vec![8, 8, 8]),
            Point::new(vec![9, 8, 8]),
            Point::new(vec![8, 9, 9]),
            Point::new(vec![-9, 9, 0]),
        ]
    }

    #[test]
    fn random_partitions_match_plaintext() {
        let recs = records();
        let c = cfg(4, 3, 12);
        let reference = dbscan(&recs, c.params);
        let mut r = rng(42);
        for trial in 0..3 {
            let part = ArbitraryPartition::random(&mut r, &recs);
            let (a_out, b_out) =
                run_arbitrary_pair(&c, &part, rng(100 + trial), rng(200 + trial)).unwrap();
            assert_eq!(a_out.clustering, reference, "trial {trial}: alice");
            assert_eq!(b_out.clustering, reference, "trial {trial}: bob");
        }
    }

    #[test]
    fn vertical_ownership_pattern_reduces_to_vertical_protocol_result() {
        let recs = records();
        let ownership = vec![vec![Owner::Alice, Owner::Bob, Owner::Bob]; recs.len()];
        let part = ArbitraryPartition::from_records(&recs, ownership);
        let c = cfg(4, 3, 12);
        let (a_out, _) = run_arbitrary_pair(&c, &part, rng(1), rng(2)).unwrap();
        assert_eq!(a_out.clustering, dbscan(&recs, c.params));
    }

    #[test]
    fn row_wise_ownership_works_like_horizontal_rows() {
        // Whole records owned by alternating parties — the "horizontal rows
        // inside the arbitrary model" case from Figure 4.
        let recs = records();
        let ownership: Vec<Vec<Owner>> = (0..recs.len())
            .map(|i| vec![if i % 2 == 0 { Owner::Alice } else { Owner::Bob }; 3])
            .collect();
        let part = ArbitraryPartition::from_records(&recs, ownership);
        let c = cfg(4, 3, 12);
        let (a_out, b_out) = run_arbitrary_pair(&c, &part, rng(3), rng(4)).unwrap();
        // Unlike the horizontal protocol, the arbitrary driver runs the
        // joint lockstep loop, so the result matches centralized DBSCAN.
        assert_eq!(a_out.clustering, dbscan(&recs, c.params));
        assert_eq!(b_out.clustering, a_out.clustering);
    }

    #[test]
    fn leakage_is_neighbor_counts_like_vertical() {
        let recs = records();
        let part = ArbitraryPartition::random(&mut rng(5), &recs);
        let c = cfg(4, 3, 12);
        let (a_out, _) = run_arbitrary_pair(&c, &part, rng(6), rng(7)).unwrap();
        assert!(a_out.leakage.count_kind("neighbor_count") > 0);
        assert_eq!(a_out.leakage.count_kind("core_point_bit"), 0);
    }
}
