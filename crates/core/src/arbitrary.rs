//! The arbitrary-partition DBSCAN driver (§4.4).
//!
//! "Since the arbitrarily partitioned data could be decomposed into
//! horizontally and vertically partitioned data, …, the algorithm for the
//! arbitrarily partitioned data is the combination of algorithms for
//! horizontally and vertically partitioned data." — concretely: the control
//! structure is the vertical protocol's shared lockstep loop (both parties
//! hold a stake in *every* record, so both learn every label, per §3.3),
//! while each distance test uses the ADP decomposition ([`crate::adp`]) that
//! routes split attribute pairs through the Multiplication Protocol.
//!
//! Runs through the shared [`crate::session`] dispatch; the
//! [`crate::session::Participant`] builder is the supported entry point.

use crate::adp::{adp_compare_set_alice, adp_compare_set_bob, PairView};
use crate::config::ProtocolConfig;
use crate::driver::PartyOutput;
use crate::error::CoreError;
use crate::session::{
    run_two_party, HandshakeProfile, Mode, ModeContext, ModeDriver, Session, SessionLog,
};
use crate::vertical::lockstep_dbscan;
use ppds_dbscan::Clustering;
use ppds_observe::trace;
use ppds_smc::{Party, ProtocolContext};
use ppds_transport::Channel;

/// The arbitrary-partition protocol as a [`ModeDriver`]. `values` is this
/// party's view: per record, `Some(value)` exactly at the attributes it
/// owns (see [`crate::partition::ArbitraryPartition`]).
pub(crate) struct ArbitraryDriver<'a> {
    pub values: &'a [Vec<Option<i64>>],
}

impl ArbitraryDriver<'_> {
    fn dim(&self) -> usize {
        self.values.first().map_or(1, Vec::len)
    }
}

impl ModeDriver for ArbitraryDriver<'_> {
    fn validate(&self, cfg: &ProtocolConfig) -> Result<(), CoreError> {
        let dim = self.dim();
        cfg.validate(dim)?;
        for (i, row) in self.values.iter().enumerate() {
            if row.len() != dim {
                return Err(CoreError::config(format!(
                    "record {i} has {} attributes, expected {dim}",
                    row.len()
                )));
            }
            for value in row.iter().flatten() {
                if value.abs() > cfg.coord_bound {
                    return Err(CoreError::config(format!(
                        "record {i} exceeds the agreed coordinate bound {}",
                        cfg.coord_bound
                    )));
                }
            }
        }
        Ok(())
    }

    fn profile(&self) -> HandshakeProfile {
        HandshakeProfile {
            mode: Mode::Arbitrary,
            n: self.values.len(),
            dim: self.dim(),
            dim_must_match: true,
        }
    }

    fn check_session(&self, _cfg: &ProtocolConfig, session: &Session) -> Result<(), CoreError> {
        if session.peer_n != self.values.len() {
            return Err(CoreError::HandshakeMismatch {
                field: "record_count",
                ours: self.values.len() as u64,
                theirs: session.peer_n as u64,
            });
        }
        Ok(())
    }

    fn execute<C: Channel>(
        &self,
        chan: &mut C,
        mctx: &ModeContext<'_>,
        ctx: &ProtocolContext,
        log: &mut SessionLog,
    ) -> Result<Clustering, CoreError> {
        let (cfg, values) = (mctx.cfg, self.values);
        let backend = mctx.backend(self.dim());
        // With grid pruning, each party publishes coarse bands at the
        // attribute cells it owns (the rest stay sentinel-marked), the
        // tables are merged owner-wise, and both sides derive identical
        // candidate sets over the merged band table.
        let pruned = arbitrary_band_oracle(chan, cfg, mctx.role, values, &mut log.leakage)?;
        let ledger = &mut log.ledger;
        let sharing = &mut log.sharing;
        // One context instance per region query (see the vertical driver).
        let region_ctx = ctx.narrow("region");
        let mut q = 0u64;
        let dist_leq_set = |x: usize, ys: &[usize]| -> Result<Vec<bool>, CoreError> {
            let qctx = region_ctx.at(q);
            let span = trace::span_with(|| format!("region#{q}"), || chan.metrics());
            q += 1;
            let views: Vec<PairView<'_>> = ys
                .iter()
                .map(|&y| PairView {
                    x: &values[x],
                    y: &values[y],
                })
                .collect();
            let records: Vec<u64> = ys.iter().map(|&y| y as u64).collect();
            let result = match mctx.role {
                Party::Alice => adp_compare_set_alice(
                    chan, cfg, &backend, &views, &records, &qctx, ledger, sharing,
                )?,
                Party::Bob => adp_compare_set_bob(
                    chan, cfg, &backend, &views, &records, &qctx, ledger, sharing,
                )?,
            };
            span.end(|| chan.metrics());
            Ok(result)
        };
        let n = values.len();
        let candidates_for = |x: usize| match &pruned {
            Some(oracle) => oracle.candidates_of(x),
            None => crate::prune::exhaustive_candidates(n, x),
        };
        lockstep_dbscan(
            n,
            cfg.params,
            candidates_for,
            dist_leq_set,
            &mut log.leakage,
        )
    }
}

/// Builds the merged-band candidate oracle for a grid-pruned arbitrary
/// session (`None` when the config is exhaustive). Each party quantizes
/// the attribute cells it owns to coarse public bands and marks the rest
/// with the [`crate::prune::BAND_UNOWNED`] sentinel; both tables are
/// exchanged (the received table is ledgered as a `pruning_bands` leakage
/// event) and merged owner-wise in the agreed (Alice, Bob) order, so both
/// parties index the identical merged band table. A cell owned by neither
/// party is a typed error, never a silent desync.
fn arbitrary_band_oracle<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    role: Party,
    values: &[Vec<Option<i64>>],
    leakage: &mut ppds_smc::LeakageLog,
) -> Result<Option<crate::prune::BandCandidates>, CoreError> {
    let ppds_dbscan::Pruning::Grid { coarseness } = cfg.pruning else {
        return Ok(None);
    };
    let width = ppds_dbscan::band_width(cfg.params.eps_sq, coarseness);
    let mine: Vec<Vec<i64>> = values
        .iter()
        .map(|row| {
            row.iter()
                .map(|cell| match cell {
                    Some(v) => v.div_euclid(width),
                    None => crate::prune::BAND_UNOWNED,
                })
                .collect()
        })
        .collect();
    let theirs = crate::prune::exchange_band_tables(chan, &mine, width, leakage)?;
    let merged = match role {
        Party::Alice => crate::prune::merge_band_tables(&mine, &theirs)?,
        Party::Bob => crate::prune::merge_band_tables(&theirs, &mine)?,
    };
    Ok(Some(crate::prune::BandCandidates::new(merged, width)))
}

/// One party's full run over arbitrarily partitioned data. `my_values` is
/// this party's view: per record, `Some(value)` exactly at the attributes
/// it owns (see [`crate::partition::ArbitraryPartition`]).
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::Participant with PartyData::Arbitrary"
)]
pub fn arbitrary_party<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_values: &[Vec<Option<i64>>],
    role: Party,
    rng: rand::rngs::StdRng,
) -> Result<PartyOutput, CoreError> {
    let mut rng = rng;
    run_two_party(
        chan,
        cfg,
        &ArbitraryDriver { values: my_values },
        role,
        None,
        &ProtocolContext::from_rng(&mut rng),
    )
    .map(|outcome| outcome.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::driver::run_arbitrary_pair;
    use crate::partition::{ArbitraryPartition, Owner};
    use crate::test_helpers::rng;
    use ppds_dbscan::{dbscan, DbscanParams, Point};

    fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
        ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound)
    }

    #[allow(deprecated)]
    fn arbitrary(
        c: &ProtocolConfig,
        part: &ArbitraryPartition,
        sa: u64,
        sb: u64,
    ) -> (PartyOutput, PartyOutput) {
        run_arbitrary_pair(c, part, rng(sa), rng(sb)).unwrap()
    }

    fn records() -> Vec<Point> {
        vec![
            Point::new(vec![0, 0, 1]),
            Point::new(vec![1, 0, 0]),
            Point::new(vec![0, 1, 1]),
            Point::new(vec![8, 8, 8]),
            Point::new(vec![9, 8, 8]),
            Point::new(vec![8, 9, 9]),
            Point::new(vec![-9, 9, 0]),
        ]
    }

    #[test]
    fn random_partitions_match_plaintext() {
        let recs = records();
        let c = cfg(4, 3, 12);
        let reference = dbscan(&recs, c.params);
        let mut r = rng(42);
        for trial in 0..3 {
            let part = ArbitraryPartition::random(&mut r, &recs);
            let (a_out, b_out) = arbitrary(&c, &part, 100 + trial, 200 + trial);
            assert_eq!(a_out.clustering, reference, "trial {trial}: alice");
            assert_eq!(b_out.clustering, reference, "trial {trial}: bob");
        }
    }

    #[test]
    fn vertical_ownership_pattern_reduces_to_vertical_protocol_result() {
        let recs = records();
        let ownership = vec![vec![Owner::Alice, Owner::Bob, Owner::Bob]; recs.len()];
        let part = ArbitraryPartition::from_records(&recs, ownership);
        let c = cfg(4, 3, 12);
        let (a_out, _) = arbitrary(&c, &part, 1, 2);
        assert_eq!(a_out.clustering, dbscan(&recs, c.params));
    }

    #[test]
    fn row_wise_ownership_works_like_horizontal_rows() {
        // Whole records owned by alternating parties — the "horizontal rows
        // inside the arbitrary model" case from Figure 4.
        let recs = records();
        let ownership: Vec<Vec<Owner>> = (0..recs.len())
            .map(|i| vec![if i % 2 == 0 { Owner::Alice } else { Owner::Bob }; 3])
            .collect();
        let part = ArbitraryPartition::from_records(&recs, ownership);
        let c = cfg(4, 3, 12);
        let (a_out, b_out) = arbitrary(&c, &part, 3, 4);
        // Unlike the horizontal protocol, the arbitrary driver runs the
        // joint lockstep loop, so the result matches centralized DBSCAN.
        assert_eq!(a_out.clustering, dbscan(&recs, c.params));
        assert_eq!(b_out.clustering, a_out.clustering);
    }

    #[test]
    fn leakage_is_neighbor_counts_like_vertical() {
        let recs = records();
        let part = ArbitraryPartition::random(&mut rng(5), &recs);
        let c = cfg(4, 3, 12);
        let (a_out, _) = arbitrary(&c, &part, 6, 7);
        assert!(a_out.leakage.count_kind("neighbor_count") > 0);
        assert_eq!(a_out.leakage.count_kind("core_point_bit"), 0);
    }
}
