//! The enhanced core-point test (Section 5).
//!
//! The basic horizontal protocol reveals, per query, *how many* of the
//! responder's points fall in the neighborhood (Theorem 9). Section 5
//! replaces the count with a single bit:
//!
//! 1. The querier's coefficient vector `(ΣA², −2A_1, …, −2A_m, 1)` is
//!    encrypted under her key and sent **once**; the responder answers with
//!    `E(Dist²(A, B_j) + v_j)` for every point `B_j` (freshly permuted),
//!    using the dot-product Multiplication Protocol. The querier decrypts
//!    shares `u_j`, the responder keeps `v_j`.
//! 2. With `k = MinPts − |querier's own neighbors|`, the parties select the
//!    k-th smallest shared distance (repeated-minimum or quickselect, §5's
//!    two algorithms) using share comparisons
//!    `u_a − u_b < v_a − v_b ⟺ Dist_a < Dist_b`.
//! 3. One final Yao comparison decides `u_k ≤ Eps² + v_k`, i.e. whether the
//!    k-th nearest responder point is within Eps — which is precisely
//!    "is A a core point", revealing nothing else about the count
//!    (Theorem 11).
//!
//! Edge cases the paper leaves implicit: when `k ≤ 0` the querier already
//! knows A is core, and when `k > n_b` it cannot possibly be; both are
//! decided locally, and the responder only sees a one-bit "not engaging"
//! flag (strictly less than it learns from a full selection).
//!
//! All three phases dispatch through the session's [`SmcBackend`]: the
//! Paillier substrate reproduces the homomorphic dot products and Yao
//! comparisons byte-for-byte; the sharing substrate answers with one
//! masked-share exchange per phase over `Z_2^64` (DESIGN.md §14).

use crate::config::{ProtocolConfig, YaoLedger};
use crate::domain::{dot_response_packing, enhanced_share_domain};
use crate::error::CoreError;
use crate::session::{HandshakeProfile, Mode, ModeContext, ModeDriver, Session, SessionLog};
use ppds_dbscan::{Clustering, Point};
use ppds_observe::trace;
use ppds_smc::compare::CmpOp;
use ppds_smc::kth::kth_smallest_with;
use ppds_smc::ResponsePacking;
use ppds_smc::{
    LeakageEvent, LeakageLog, Party, ProtocolContext, SharingLedger, SmcBackend, SmcError,
};
use ppds_transport::Channel;
use rand::seq::SliceRandom;

/// The masked-distance response packing this config selects: `Some` when
/// `cfg.packing` is on (validated configs always have a layout).
pub(crate) fn dot_packing(cfg: &ProtocolConfig, dim: usize) -> Option<ResponsePacking> {
    if cfg.packing {
        dot_response_packing(cfg, dim)
    } else {
        None
    }
}

/// Querier side of one enhanced core-point test. `own_count` is the size of
/// the querier's *local* Eps-neighborhood of `query` (including the point
/// itself); `ctx` is this core test's context (the driver narrows per
/// query). Returns whether `query` is a core point of the joint data.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn enhanced_core_test_querier<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    query: &Point,
    own_count: usize,
    responder_count: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
    leakage: &mut LeakageLog,
) -> Result<bool, SmcError> {
    let k_needed = cfg.params.min_pts.saturating_sub(own_count);
    let engage = k_needed >= 1 && k_needed <= responder_count;
    chan.send(&(engage, k_needed as u64))?;
    if !engage {
        // Decided locally: core iff the local neighborhood alone suffices.
        let is_core = k_needed == 0;
        leakage.record(LeakageEvent::CorePointBit {
            query: "local".into(),
            is_core,
        });
        return Ok(is_core);
    }

    // Phase 1: shares u_j = Dist²(A, B_j) + v_j.
    let dim = query.dim();
    let mut xs: Vec<i64> = Vec::with_capacity(dim + 2);
    xs.push(i64::try_from(query.norm_sq()).expect("ΣA² fits i64 on a validated lattice"));
    for &a in query.coords() {
        xs.push(-2 * a);
    }
    xs.push(1);
    let dot_span = trace::span("dot", || chan.metrics());
    let shares = backend.dot_many_querier(chan, &xs, responder_count, &ctx.narrow("dot"), acct)?;
    dot_span.end(|| chan.metrics());

    // Phase 2: k-th smallest shared distance. Batching runs quickselect
    // partitions as one comparison frame set per level (repeated-min is
    // inherently sequential and executes identically either way).
    let domain = enhanced_share_domain(cfg, dim);
    let sel_ctx = ctx.narrow("sel");
    let sel_span = trace::span("sel", || chan.metrics());
    let outcome = kth_smallest_with(
        cfg.selection,
        backend,
        chan,
        Party::Alice,
        &shares,
        k_needed,
        &domain,
        cfg.batching,
        &sel_ctx,
        acct,
    )?;
    sel_span.end(|| chan.metrics());
    for _ in 0..outcome.comparisons {
        ledger.record(cfg.key_bits, domain.n0());
    }

    // Phase 3: u_k ≤ Eps² + v_k.
    ledger.record(cfg.key_bits, domain.n0());
    let cmp_span = trace::span("cmp", || chan.metrics());
    let is_core = backend.compare(
        chan,
        Party::Alice,
        shares[outcome.index],
        CmpOp::Leq,
        &domain,
        &ctx.narrow("cmp"),
        acct,
    )?;
    cmp_span.end(|| chan.metrics());
    leakage.record(LeakageEvent::CorePointBit {
        query: "joint".into(),
        is_core,
    });
    Ok(is_core)
}

/// Responder side of one enhanced core-point test over `my_points`,
/// restricted to the `candidates` indices (the full range when pruning is
/// off — see the crate-internal `prune` module).
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn enhanced_core_respond<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    my_points: &[Point],
    candidates: &[usize],
    dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
    leakage: &mut LeakageLog,
) -> Result<(), SmcError> {
    let (engage, k): (bool, u64) = chan.recv()?;
    if !engage {
        return Ok(());
    }
    let k = k as usize;
    if k == 0 || k > candidates.len() {
        return Err(SmcError::protocol(format!(
            "querier engaged with invalid k = {k} for {} served points",
            candidates.len()
        )));
    }
    leakage.record(LeakageEvent::ThresholdRank {
        query: "peer-query".into(),
        k: k as u64,
    });

    // Phase 1: masked dot products over a fresh permutation of the served
    // set. Band pruning is exact, so every within-Eps point is a candidate
    // and the k-th smallest served distance decides core-ness just like
    // the k-th smallest overall.
    let mut order: Vec<usize> = candidates.to_vec();
    order.shuffle(&mut ctx.narrow("perm").rng());
    let rows: Vec<Vec<i64>> = order
        .iter()
        .map(|&idx| {
            let p = &my_points[idx];
            let mut row: Vec<i64> = Vec::with_capacity(p.dim() + 2);
            row.push(1);
            row.extend_from_slice(p.coords());
            row.push(i64::try_from(p.norm_sq()).expect("ΣB² fits i64 on a validated lattice"));
            row
        })
        .collect();
    let dot_span = trace::span("dot", || chan.metrics());
    let shares = backend.dot_many_responder(chan, &rows, &ctx.narrow("dot"), acct)?;
    dot_span.end(|| chan.metrics());

    // Phase 2: mirror the selection (batched partitions when enabled).
    let domain = enhanced_share_domain(cfg, dim);
    let sel_ctx = ctx.narrow("sel");
    let sel_span = trace::span("sel", || chan.metrics());
    let outcome = kth_smallest_with(
        cfg.selection,
        backend,
        chan,
        Party::Bob,
        &shares,
        k,
        &domain,
        cfg.batching,
        &sel_ctx,
        acct,
    )?;
    sel_span.end(|| chan.metrics());
    for _ in 0..outcome.comparisons {
        ledger.record(cfg.key_bits, domain.n0());
    }

    // Phase 3: Eps² + v_k vs the querier's u_k.
    ledger.record(cfg.key_bits, domain.n0());
    let cmp_span = trace::span("cmp", || chan.metrics());
    let is_core = backend.compare(
        chan,
        Party::Bob,
        cfg.params.eps_sq as i64 + shares[outcome.index],
        CmpOp::Leq,
        &domain,
        &ctx.narrow("cmp"),
        acct,
    )?;
    cmp_span.end(|| chan.metrics());
    if is_core {
        // The responder knows which of *his own* points ranked k-th and
        // that it sits within Eps of some unidentifiable query point.
        leakage.record(LeakageEvent::OwnPointMatched {
            point: format!("own#{}", order[outcome.index]),
        });
    }
    Ok(())
}

/// The enhanced protocol as a [`ModeDriver`]: the horizontal expansion
/// engine with the count-free core-point test above.
pub(crate) struct EnhancedDriver<'a> {
    pub points: &'a [Point],
}

impl ModeDriver for EnhancedDriver<'_> {
    fn validate(&self, cfg: &ProtocolConfig) -> Result<(), CoreError> {
        crate::horizontal::validate_complete_records(cfg, self.points)
    }

    fn profile(&self) -> HandshakeProfile {
        crate::horizontal::complete_records_profile(Mode::Enhanced, self.points)
    }

    fn check_session(&self, _cfg: &ProtocolConfig, _session: &Session) -> Result<(), CoreError> {
        Ok(())
    }

    fn execute<C: Channel>(
        &self,
        chan: &mut C,
        mctx: &ModeContext<'_>,
        ctx: &ProtocolContext,
        log: &mut SessionLog,
    ) -> Result<Clustering, CoreError> {
        let (cfg, points) = (mctx.cfg, self.points);
        let dim = points.first().map_or(0, Point::dim);
        let backend = mctx.backend(dim);
        // Grid pruning: identical per-query coarse-cell exchange as the
        // basic horizontal driver, run *before* the (engage, k) message so
        // the engage decision can use the candidate cardinality.
        let index = crate::prune::local_index(points, cfg.params.eps_sq, cfg.pruning);
        let width = match cfg.pruning {
            ppds_dbscan::Pruning::Grid { coarseness } => {
                Some(ppds_dbscan::band_width(cfg.params.eps_sq, coarseness))
            }
            ppds_dbscan::Pruning::Exhaustive => None,
        };
        let grid = width.map(|w| ppds_dbscan::CoarseGrid::from_points(points, w));
        // Direction-keyed paths, for the same reason as the horizontal
        // driver: both halves of one core test must share a context path
        // so the sharing backend's tape draws stay correlated.
        let (my_queries, peer_queries) = match mctx.role {
            Party::Alice => ("enh_a", "enh_b"),
            Party::Bob => ("enh_b", "enh_a"),
        };
        let query_ctx = ctx.narrow(my_queries);
        let serve_ctx = ctx.narrow(peer_queries);
        let run_query_phase = |chan: &mut C, log: &mut SessionLog| {
            let mut q = 0u64;
            crate::horizontal::querier_phase(
                chan,
                index.as_ref(),
                points,
                |chan, idx, own_count| {
                    let test_ctx = query_ctx.at(q);
                    let span = trace::span_with(|| format!("query#{q}"), || chan.metrics());
                    q += 1;
                    let responder_count = match width {
                        Some(w) => crate::prune::query_candidate_count(
                            chan,
                            &points[idx],
                            w,
                            &mut log.leakage,
                            &format!("own#{idx}"),
                        )?,
                        None => mctx.session.peer_n,
                    };
                    let is_core = enhanced_core_test_querier(
                        chan,
                        cfg,
                        &backend,
                        &points[idx],
                        own_count,
                        responder_count,
                        &test_ctx,
                        &mut log.ledger,
                        &mut log.sharing,
                        &mut log.leakage,
                    )?;
                    span.end(|| chan.metrics());
                    Ok(is_core)
                },
            )
        };
        let run_respond_phase = |chan: &mut C, log: &mut SessionLog| {
            let mut q = 0u64;
            crate::horizontal::responder_phase(chan, |chan| {
                let test_ctx = serve_ctx.at(q);
                let span = trace::span_with(|| format!("serve#{q}"), || chan.metrics());
                let candidates = match &grid {
                    Some(g) => crate::prune::respond_candidates(
                        chan,
                        g,
                        &mut log.leakage,
                        &format!("serve#{q}"),
                    )?,
                    None => crate::prune::all_candidates(points.len()),
                };
                q += 1;
                enhanced_core_respond(
                    chan,
                    cfg,
                    &backend,
                    points,
                    &candidates,
                    dim,
                    &test_ctx,
                    &mut log.ledger,
                    &mut log.sharing,
                    &mut log.leakage,
                )?;
                span.end(|| chan.metrics());
                Ok(())
            })
        };

        match mctx.role {
            Party::Alice => {
                let clustering = run_query_phase(chan, log)?;
                run_respond_phase(chan, log)?;
                Ok(clustering)
            }
            Party::Bob => {
                run_respond_phase(chan, log)?;
                run_query_phase(chan, log)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::paillier_backend;
    use crate::test_helpers::{ctx, rng};
    use ppds_dbscan::{dist_sq, DbscanParams};
    use ppds_paillier::Keypair;
    use ppds_transport::duplex;
    use std::sync::OnceLock;

    fn querier_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(66)))
    }

    fn responder_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(67)))
    }

    fn run_test(
        cfg: ProtocolConfig,
        query: Point,
        own_count: usize,
        responder_points: Vec<Point>,
        seed: u64,
    ) -> (bool, LeakageLog, LeakageLog) {
        let dim = query.dim();
        let nb = responder_points.len();
        let (mut qchan, mut rchan) = duplex();
        let q = std::thread::spawn(move || {
            let backend = paillier_backend(&cfg, querier_kp(), &responder_kp().public, dim);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let mut leakage = LeakageLog::new();
            let is_core = enhanced_core_test_querier(
                &mut qchan,
                &cfg,
                &backend,
                &query,
                own_count,
                nb,
                &ctx(seed),
                &mut ledger,
                &mut acct,
                &mut leakage,
            )
            .unwrap();
            (is_core, leakage)
        });
        let backend = paillier_backend(&cfg, responder_kp(), &querier_kp().public, dim);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let mut r_leakage = LeakageLog::new();
        let all: Vec<usize> = (0..responder_points.len()).collect();
        enhanced_core_respond(
            &mut rchan,
            &cfg,
            &backend,
            &responder_points,
            &all,
            dim,
            &ctx(seed + 1),
            &mut ledger,
            &mut acct,
            &mut r_leakage,
        )
        .unwrap();
        let (is_core, q_leakage) = q.join().unwrap();
        (is_core, q_leakage, r_leakage)
    }

    fn cfg(eps_sq: u64, min_pts: usize) -> ProtocolConfig {
        ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, 10)
    }

    #[test]
    fn core_decision_matches_plain_count() {
        let responder_points = vec![
            Point::new(vec![1, 0]),
            Point::new(vec![0, 2]),
            Point::new(vec![5, 5]),
            Point::new(vec![-1, -1]),
        ];
        let query = Point::new(vec![0, 0]);
        for min_pts in 1..=6 {
            for own_count in 0..=3 {
                let c = cfg(4, min_pts);
                let peer_in = responder_points
                    .iter()
                    .filter(|p| dist_sq(p, &query) <= 4)
                    .count();
                let expect = own_count + peer_in >= min_pts;
                let (got, _, _) = run_test(
                    c,
                    query.clone(),
                    own_count,
                    responder_points.clone(),
                    1000 + (min_pts * 10 + own_count) as u64,
                );
                assert_eq!(got, expect, "min_pts={min_pts} own={own_count}");
            }
        }
    }

    #[test]
    fn sharing_backend_core_decision_matches() {
        use ppds_smc::{DealerTape, SharingBackend};
        let responder_points = vec![
            Point::new(vec![1, 0]),
            Point::new(vec![0, 2]),
            Point::new(vec![5, 5]),
            Point::new(vec![-1, -1]),
        ];
        let query = Point::new(vec![0, 0]);
        let peer_in = responder_points
            .iter()
            .filter(|p| dist_sq(p, &query) <= 4)
            .count();
        for batching in [false, true] {
            for own_count in [0usize, 1, 2] {
                let run_cfg = cfg(4, 3).with_batching(batching);
                let expect = own_count + peer_in >= 3;
                let mk = move || SharingBackend {
                    tape: DealerTape::from_seed(3131),
                    batching,
                    dot_mask_bound: 1 << 20,
                };
                let nb = responder_points.len();
                let (mut qchan, mut rchan) = duplex();
                let q_query = query.clone();
                let q = std::thread::spawn(move || {
                    let mut ledger = YaoLedger::default();
                    let mut acct = SharingLedger::default();
                    let mut leakage = LeakageLog::new();
                    let is_core = enhanced_core_test_querier(
                        &mut qchan,
                        &run_cfg,
                        &mk(),
                        &q_query,
                        own_count,
                        nb,
                        &ctx(2000 + own_count as u64),
                        &mut ledger,
                        &mut acct,
                        &mut leakage,
                    )
                    .unwrap();
                    (is_core, acct)
                });
                let mut ledger = YaoLedger::default();
                let mut acct = SharingLedger::default();
                let mut r_leakage = LeakageLog::new();
                enhanced_core_respond(
                    &mut rchan,
                    &run_cfg,
                    &mk(),
                    &responder_points,
                    &[0, 1, 2, 3],
                    2,
                    &ctx(2001 + own_count as u64),
                    &mut ledger,
                    &mut acct,
                    &mut r_leakage,
                )
                .unwrap();
                let (is_core, q_acct) = q.join().unwrap();
                assert_eq!(is_core, expect, "batching={batching} own={own_count}");
                assert!(
                    q_acct.opened_elements > 0,
                    "dot product opens masked elements"
                );
            }
        }
    }

    #[test]
    fn leakage_is_core_bit_only_for_querier() {
        let (is_core, q_leakage, r_leakage) = run_test(
            cfg(4, 2),
            Point::new(vec![0, 0]),
            1,
            vec![Point::new(vec![1, 1]), Point::new(vec![8, 8])],
            50,
        );
        assert!(is_core);
        // Querier's deliberate disclosures: exactly one core-point bit.
        assert_eq!(q_leakage.count_kind("core_point_bit"), 1);
        assert_eq!(q_leakage.count_kind("neighbor_count"), 0);
        // Responder: learned the rank k and that his nearest point matched.
        assert_eq!(r_leakage.count_kind("threshold_rank"), 1);
        assert_eq!(r_leakage.count_kind("own_point_matched"), 1);
    }

    #[test]
    fn locally_decided_core() {
        // own_count ≥ MinPts: no engagement, responder learns one flag bit.
        let (is_core, _, r_leakage) = run_test(
            cfg(4, 2),
            Point::new(vec![0, 0]),
            5,
            vec![Point::new(vec![9, 9])],
            60,
        );
        assert!(is_core);
        assert!(r_leakage.is_empty());
    }

    #[test]
    fn locally_decided_not_core() {
        // k > responder point count: impossible to reach MinPts.
        let (is_core, _, _) = run_test(
            cfg(4, 5),
            Point::new(vec![0, 0]),
            1,
            vec![Point::new(vec![0, 1])],
            70,
        );
        assert!(!is_core);
    }

    #[test]
    fn quickselect_variant_agrees() {
        let mut c = cfg(9, 4);
        c.selection = ppds_smc::kth::SelectionMethod::QuickSelect;
        let responder_points = vec![
            Point::new(vec![3, 0]),
            Point::new(vec![0, 3]),
            Point::new(vec![2, 2]),
            Point::new(vec![10, 0]),
            Point::new(vec![0, 10]),
        ];
        // own_count 1 → k = 3; 3rd nearest responder distance: 9 ≤ 9 ✓.
        let (is_core, _, _) = run_test(c, Point::new(vec![0, 0]), 1, responder_points.clone(), 80);
        assert!(is_core);
        // min_pts 5 → k = 4; 4th nearest is dist² 100 > 9.
        let mut c5 = cfg(9, 5);
        c5.selection = ppds_smc::kth::SelectionMethod::QuickSelect;
        let (is_core, _, _) = run_test(c5, Point::new(vec![0, 0]), 1, responder_points, 81);
        assert!(!is_core);
    }

    #[test]
    fn yao_backend_small_domain() {
        let mut c = ProtocolConfig::new_with_yao(
            DbscanParams {
                eps_sq: 2,
                min_pts: 2,
            },
            2,
        );
        c.mask_bits = 1;
        let (is_core, _, _) = run_test(
            c,
            Point::new(vec![0, 0]),
            1,
            vec![Point::new(vec![1, 1]), Point::new(vec![2, 2])],
            90,
        );
        assert!(is_core); // nearest responder dist² = 2 ≤ 2
    }
}
