//! Candidate-pruning plumbing shared by the five mode drivers.
//!
//! This module is the **only** place the exhaustive all-pairs fallback is
//! materialized; the drivers ask it for candidate sets and never enumerate
//! `0..n` themselves. Two disclosure shapes exist (see DESIGN.md §15):
//!
//! * **Per-query cell exchange** (horizontal / enhanced / multiparty): the
//!   querier sends the coarse band cell of one query point; the responder
//!   answers with the candidate cardinality and serves only candidates.
//!   Responder logs [`LeakageEvent::PruningCellDisclosed`], querier logs
//!   [`LeakageEvent::PruningCandidateCount`].
//! * **Up-front band tables** (vertical / arbitrary): both parties publish
//!   the coarse band coordinates of every record over the attributes they
//!   own, merged deterministically (Alice's dimensions/values first) so
//!   both sides derive identical candidate sets. Each side logs one
//!   [`LeakageEvent::PruningBandsDisclosed`] for the table it received.
//!
//! Soundness of the band criterion (no true neighbor is ever pruned) is
//! proved in [`ppds_dbscan::pruning`]; everything here is exact, so pruned
//! runs produce byte-identical clustering labels.

use crate::error::CoreError;
use ppds_dbscan::index::{GridIndex, LinearIndex, NeighborIndex};
use ppds_dbscan::pruning::{coarse_cell, CoarseGrid, Pruning};
use ppds_dbscan::Point;
use ppds_smc::{LeakageEvent, LeakageLog};
use ppds_transport::Channel;
use std::collections::HashSet;

/// The per-party local region-query index: an ε-grid when pruning is on
/// (and the data admits one), the exhaustive linear scan otherwise. Local
/// queries never cross the wire, so this swap is leakage-free.
pub(crate) fn local_index<'a>(
    points: &'a [Point],
    eps_sq: u64,
    pruning: Pruning,
) -> Box<dyn NeighborIndex + 'a> {
    if pruning.is_grid() && !points.is_empty() && eps_sq > 0 {
        Box::new(GridIndex::new(points, eps_sq))
    } else {
        Box::new(LinearIndex::new(points, eps_sq))
    }
}

/// Every index, ascending — the exhaustive fallback candidate set.
pub(crate) fn all_candidates(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Every index but `x`, ascending — the exhaustive fallback for the
/// lockstep modes, whose oracle convention excludes the query record.
pub(crate) fn exhaustive_candidates(n: usize, x: usize) -> Vec<usize> {
    (0..n).filter(|&y| y != x).collect()
}

/// Querier half of the per-query cell exchange: disclose the query's
/// coarse cell, learn how many peer records survive the band filter.
pub(crate) fn query_candidate_count<C: Channel>(
    chan: &mut C,
    query: &Point,
    width: i64,
    leakage: &mut LeakageLog,
    label: &str,
) -> Result<usize, CoreError> {
    chan.send(&coarse_cell(query.coords(), width))?;
    let count: u64 = chan.recv()?;
    leakage.record(LeakageEvent::PruningCandidateCount {
        query: label.to_string(),
        count,
    });
    Ok(count as usize)
}

/// Responder half of the per-query cell exchange: learn the peer query's
/// coarse cell, answer with the candidate cardinality, and return the
/// candidate indices (ascending) the secure phase should serve.
pub(crate) fn respond_candidates<C: Channel>(
    chan: &mut C,
    grid: &CoarseGrid,
    leakage: &mut LeakageLog,
    label: &str,
) -> Result<Vec<usize>, CoreError> {
    let cell: Vec<i64> = chan.recv()?;
    leakage.record(LeakageEvent::PruningCellDisclosed {
        query: label.to_string(),
        cell: cell.clone(),
    });
    let candidates = grid.candidates(&cell);
    chan.send(&(candidates.len() as u64))?;
    Ok(candidates)
}

/// Exchanges per-record band tables (both sides send before either
/// receives, like the `Hello` frames) and ledgers the received table as
/// one [`LeakageEvent::PruningBandsDisclosed`].
pub(crate) fn exchange_band_tables<C: Channel>(
    chan: &mut C,
    mine: &[Vec<i64>],
    width: i64,
    leakage: &mut LeakageLog,
) -> Result<Vec<Vec<i64>>, CoreError> {
    chan.send(&mine.to_vec())?;
    let theirs: Vec<Vec<i64>> = chan.recv()?;
    let distinct = theirs.iter().collect::<HashSet<_>>().len() as u64;
    leakage.record(LeakageEvent::PruningBandsDisclosed {
        records: theirs.len() as u64,
        band_width: width,
        distinct,
    });
    Ok(theirs)
}

/// Sentinel band value for attribute cells a party does not own (the
/// arbitrary partitioning). Real bands can never take this value: a
/// coordinate would need to be below `-band_width · 2^62`, far outside any
/// admissible `coord_bound`.
pub(crate) const BAND_UNOWNED: i64 = i64::MIN;

/// Merges two complementary per-record band tables (arbitrary
/// partitioning) into the full band table, taking the owner's value per
/// cell. The merge is expressed over (Alice's table, Bob's table) — not
/// (mine, theirs) — so both parties derive byte-identical merged tables
/// even on malformed ownership, and a cell neither party owns is a typed
/// error instead of a mid-protocol desync.
pub(crate) fn merge_band_tables(
    alice: &[Vec<i64>],
    bob: &[Vec<i64>],
) -> Result<Vec<Vec<i64>>, CoreError> {
    if alice.len() != bob.len() {
        return Err(CoreError::mismatch(format!(
            "band tables disagree on record count: {} vs {}",
            alice.len(),
            bob.len()
        )));
    }
    alice
        .iter()
        .zip(bob)
        .enumerate()
        .map(|(x, (a_row, b_row))| {
            if a_row.len() != b_row.len() {
                return Err(CoreError::mismatch(format!(
                    "band tables disagree on dimension at record {x}"
                )));
            }
            a_row
                .iter()
                .zip(b_row)
                .map(|(&a, &b)| match (a == BAND_UNOWNED, b == BAND_UNOWNED) {
                    (false, _) => Ok(a),
                    (true, false) => Ok(b),
                    (true, true) => Err(CoreError::mismatch(format!(
                        "record {x} has an attribute band owned by neither party"
                    ))),
                })
                .collect()
        })
        .collect()
}

/// Per-record candidate oracle over a merged/concatenated band table: for
/// record `x`, every *other* record whose band is adjacent-or-equal, in
/// ascending order. This is what replaces the all-pairs loop in the
/// lockstep modes.
pub(crate) struct BandCandidates {
    cells: Vec<Vec<i64>>,
    grid: CoarseGrid,
}

impl BandCandidates {
    /// Indexes the merged band table.
    pub(crate) fn new(cells: Vec<Vec<i64>>, width: i64) -> Self {
        let grid = CoarseGrid::from_cells(cells.clone(), width);
        BandCandidates { cells, grid }
    }

    /// Candidate partners of record `x`, ascending, excluding `x` itself.
    pub(crate) fn candidates_of(&self, x: usize) -> Vec<usize> {
        self.grid
            .candidates(&self.cells[x])
            .into_iter()
            .filter(|&y| y != x)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppds_dbscan::pruning::band_width;

    #[test]
    fn local_index_picks_grid_exactly_when_it_can() {
        let points = vec![Point::new(vec![0, 0]), Point::new(vec![3, 4])];
        let grid = Pruning::Grid { coarseness: 1 };
        assert_eq!(
            local_index(&points, 25, grid).region_query(&points[0]),
            vec![0, 1]
        );
        assert_eq!(
            local_index(&points, 25, Pruning::Exhaustive).region_query(&points[0]),
            vec![0, 1]
        );
        // Degenerate shapes fall back to the linear scan instead of
        // tripping the GridIndex constructor panics.
        assert!(local_index(&[], 25, grid).is_empty());
        assert_eq!(
            local_index(&points, 0, grid).region_query(&points[0]),
            vec![0]
        );
    }

    #[test]
    fn merge_takes_the_owner_side_and_rejects_orphans() {
        let s = BAND_UNOWNED;
        let alice = vec![vec![1, s], vec![s, 4]];
        let bob = vec![vec![s, 2], vec![3, s]];
        let merged = merge_band_tables(&alice, &bob).unwrap();
        assert_eq!(merged, vec![vec![1, 2], vec![3, 4]]);
        let orphaned = vec![vec![s, s], vec![s, 4]];
        assert!(merge_band_tables(&orphaned, &bob).is_err());
        assert!(merge_band_tables(&alice[..1], &bob).is_err());
    }

    #[test]
    fn band_candidates_exclude_self_and_stay_sorted() {
        let w = band_width(4, 1);
        let cells = vec![vec![0], vec![0], vec![1], vec![9]];
        let oracle = BandCandidates::new(cells, w);
        assert_eq!(oracle.candidates_of(0), vec![1, 2]);
        assert_eq!(oracle.candidates_of(2), vec![0, 1]);
        assert_eq!(oracle.candidates_of(3), Vec::<usize>::new());
    }

    #[test]
    fn all_candidates_is_the_full_range() {
        assert_eq!(all_candidates(3), vec![0, 1, 2]);
        assert!(all_candidates(0).is_empty());
    }
}
