//! Yao comparison domains for each distance protocol.
//!
//! Algorithm 1 compares integers in `[1, n0]`; each protocol's operands are
//! signed quantities with ranges derived from the public lattice bound `C`,
//! the dimension `m`, and `Eps²`. The derivations below are the basis of
//! each protocol's `O(c2·n0·…)` communication term, so they are computed
//! once, exactly, and tested against brute-force enumeration.

use crate::config::ProtocolConfig;
use ppds_bigint::BigUint;
use ppds_paillier::SlotLayout;
use ppds_smc::compare::ComparisonDomain;
use ppds_smc::ResponsePacking;

fn mc2(dim: usize, coord_bound: i64) -> i64 {
    let c2 = (coord_bound as i128) * (coord_bound as i128);
    i64::try_from(dim as i128 * c2).expect("m·C² fits i64 for validated configs")
}

/// Domain for protocol HDP's final comparison (§4.2).
///
/// Alice's operand is `i = ΣA_k² ∈ [0, mC²]`. Bob's operand is
/// `j = Eps² − ΣB_k² + 2·⟨A, B⟩ ∈ [Eps² − 3mC², Eps² + 2mC²]`
/// (the inner product of lattice points is bounded by `±mC²`).
pub fn hdp_domain(cfg: &ProtocolConfig, dim: usize) -> ComparisonDomain {
    let m = mc2(dim, cfg.coord_bound);
    let eps = cfg.params.eps_sq as i64;
    ComparisonDomain::new((eps - 3 * m).min(0), (eps + 2 * m).max(m))
}

/// Domain for protocol VDP's comparison (§4.3).
///
/// Alice's operand is her local squared-delta sum `α ∈ [0, mC²·4]`
/// (per-attribute deltas span `2C`, so each squared term is ≤ `4C²`);
/// Bob's is `Eps² − β` with `β` bounded the same way.
pub fn vdp_domain(cfg: &ProtocolConfig, dim: usize) -> ComparisonDomain {
    let four_m = 4 * mc2(dim, cfg.coord_bound);
    let eps = cfg.params.eps_sq as i64;
    ComparisonDomain::new((eps - four_m).min(0), eps.max(four_m))
}

/// Domain for the arbitrary-partition comparison (§4.4).
///
/// Alice: `i = V_A + Σ_H x_k² ∈ [0, 4mC² + mC²]`.
/// Bob: `j = Eps² − V_B − Σ_H y_k² + 2·cross ∈ [Eps² − 7mC², Eps² + 2mC²]`.
pub fn adp_domain(cfg: &ProtocolConfig, dim: usize) -> ComparisonDomain {
    let m = mc2(dim, cfg.coord_bound);
    let eps = cfg.params.eps_sq as i64;
    ComparisonDomain::new((eps - 7 * m).min(0), (eps + 2 * m).max(5 * m))
}

/// Domain for the enhanced protocol's share comparisons (§5).
///
/// Share differences satisfy `|u_a − u_b| ≤ Dmax + 2V` and the threshold
/// comparison operands satisfy `|·| ≤ Dmax + V + Eps²`; one symmetric
/// domain covers both.
pub fn enhanced_share_domain(cfg: &ProtocolConfig, dim: usize) -> ComparisonDomain {
    let d_max = cfg.max_dist_sq(dim) as i64;
    let v = cfg.enhanced_mask_bound(dim) as i64;
    let eps = cfg.params.eps_sq as i64;
    ComparisonDomain::symmetric(d_max + 2 * v + eps + 1)
}

/// Builds a [`ResponsePacking`] whose slots hold `value + offset` for
/// signed values of magnitude at most `offset`: slot width
/// `bits(2·offset) + 1` (the carry guard), capacity from `key_bits`.
fn response_packing(key_bits: usize, offset: BigUint) -> Option<ResponsePacking> {
    let max_slot = &offset << 1usize;
    let layout = SlotLayout::new(key_bits, max_slot.bit_length() + 1)?;
    Some(ResponsePacking { layout, offset })
}

/// Packing for Multiplication Protocol responses (`ProtocolConfig::packing`
/// on the HDP/ADP legs): each slot holds `x·y + r + offset` with
/// `|x·y| ≤ C²` and `r` one of a group's zero-sum blinding terms. The
/// first `dim − 1` terms are bounded by
/// [`ProtocolConfig::mul_mask_bound`], but the *closing* term balances
/// their sum and can reach `(dim − 1)·mask_bound`, so the offset budgets
/// `C² + dim·mask_bound` (covering both shapes with a term to spare).
/// `None` when `key_bits` cannot fit one slot —
/// [`ProtocolConfig::validate`] rejects such configs up front.
pub fn mul_response_packing(cfg: &ProtocolConfig, dim: usize) -> Option<ResponsePacking> {
    let c2 = BigUint::from_u128((cfg.coord_bound as u128) * (cfg.coord_bound as u128));
    let mask_budget = &cfg.mul_mask_bound() * dim.max(1) as u64;
    response_packing(cfg.key_bits, &c2 + &mask_budget)
}

/// Packing for the enhanced protocol's masked-distance responses: each
/// slot holds `dist² + v + offset` with `dist² ≤ Dmax` and `|v| ≤ V`
/// ([`ProtocolConfig::enhanced_mask_bound`]), so `offset = Dmax + V` —
/// derived on both sides from the public config and dimension alone.
pub fn dot_response_packing(cfg: &ProtocolConfig, dim: usize) -> Option<ResponsePacking> {
    let d_max = cfg.max_dist_sq(dim.max(1));
    let v = cfg.enhanced_mask_bound(dim.max(1));
    response_packing(
        cfg.key_bits,
        &BigUint::from_u64(d_max) + &BigUint::from_u64(v),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppds_dbscan::{dist_sq, DbscanParams, Point};

    fn cfg(eps_sq: u64, coord_bound: i64) -> ProtocolConfig {
        ProtocolConfig::new(DbscanParams { eps_sq, min_pts: 3 }, coord_bound)
    }

    /// Enumerates every lattice point pair in low dimension and checks the
    /// protocol operands stay inside the advertised domains.
    #[test]
    fn hdp_operands_always_in_domain() {
        let c = cfg(9, 3);
        let domain = hdp_domain(&c, 2);
        for ax in -3i64..=3 {
            for ay in -3i64..=3 {
                for bx in -3i64..=3 {
                    for by in -3i64..=3 {
                        let a = Point::new(vec![ax, ay]);
                        let b = Point::new(vec![bx, by]);
                        let i = a.norm_sq() as i64;
                        let ip = ax * bx + ay * by;
                        let j = 9i64 - b.norm_sq() as i64 + 2 * ip;
                        assert!(i >= domain.lo && i <= domain.hi, "i = {i}");
                        assert!(j >= domain.lo && j <= domain.hi, "j = {j}");
                        // And the comparison is the right predicate:
                        assert_eq!(i <= j, dist_sq(&a, &b) <= 9, "{a:?} {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn vdp_operands_always_in_domain() {
        let c = cfg(4, 2);
        let domain = vdp_domain(&c, 2);
        // Vertical split of 2-D records: Alice owns attr 0, Bob attr 1.
        for xa in -2i64..=2 {
            for xb in -2i64..=2 {
                for ya in -2i64..=2 {
                    for yb in -2i64..=2 {
                        let alpha = (xa - ya) * (xa - ya);
                        let beta = (xb - yb) * (xb - yb);
                        let j = 4 - beta;
                        assert!(alpha >= domain.lo && alpha <= domain.hi);
                        assert!(j >= domain.lo && j <= domain.hi);
                        assert_eq!(
                            alpha <= j,
                            (alpha + beta) as u64 <= 4,
                            "alpha={alpha} beta={beta}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn adp_operands_always_in_domain() {
        // 2 attributes, attr 0 split Alice(x)/Bob(y), attr 1 both Alice.
        let c = cfg(4, 2);
        let domain = adp_domain(&c, 2);
        for x0a in -2i64..=2 {
            for y0b in -2i64..=2 {
                for va in 0i64..=16 {
                    // va = Σ (x-y)² over Alice-only attrs, max (2C)² = 16
                    let i = va + x0a * x0a;
                    let cross = x0a * y0b;
                    let j = 4 - y0b * y0b + 2 * cross; // V_B = 0 here
                    assert!(i >= domain.lo && i <= domain.hi, "i = {i}");
                    assert!(j >= domain.lo && j <= domain.hi, "j = {j}");
                }
            }
        }
    }

    #[test]
    fn enhanced_domain_covers_share_differences() {
        let c = cfg(16, 4);
        let dim = 2;
        let domain = enhanced_share_domain(&c, dim);
        let d_max = c.max_dist_sq(dim) as i64;
        let v = c.enhanced_mask_bound(dim) as i64;
        // Extreme share difference: d=Dmax with +V mask vs d=0 with -V.
        let extreme = d_max + 2 * v;
        assert!(extreme <= domain.hi);
        assert!(-extreme >= domain.lo);
        // Threshold comparison operand: eps² + v.
        assert!(16 + v <= domain.hi);
    }

    #[test]
    fn domains_grow_with_eps_and_bound() {
        let small = hdp_domain(&cfg(4, 2), 2);
        let bigger_eps = hdp_domain(&cfg(100, 2), 2);
        let bigger_c = hdp_domain(&cfg(4, 20), 2);
        assert!(bigger_eps.hi > small.hi);
        assert!(bigger_c.n0() > small.n0());
    }
}
