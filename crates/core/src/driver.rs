//! Session plumbing: handshake, per-party outputs, and convenience runners
//! that execute both protocol halves on two threads over an in-memory
//! channel pair. Each half is equally runnable over
//! [`ppds_transport::tcp::TcpChannel`] for genuine two-process deployments
//! (see `examples/hospitals_horizontal.rs`).

use crate::config::{ProtocolConfig, YaoLedger};
use crate::error::CoreError;
use crate::partition::{ArbitraryPartition, VerticalPartition};
use ppds_dbscan::{Clustering, Point};
use ppds_paillier::{Keypair, PublicKey};
use ppds_smc::compare::Comparator;
use ppds_smc::kth::SelectionMethod;
use ppds_smc::{setup, LeakageLog, Party};
use ppds_transport::{duplex, Channel, MemoryChannel, MetricsSnapshot};
use rand::rngs::StdRng;
use rand::Rng;

/// Everything one party takes away from a protocol run.
#[derive(Debug)]
pub struct PartyOutput {
    /// The clustering this party learned (its own points for horizontal
    /// protocols; all records for vertical/arbitrary).
    pub clustering: Clustering,
    /// Exactly what this party learned beyond its prescribed output.
    pub leakage: LeakageLog,
    /// Actual bytes/messages this endpoint moved.
    pub traffic: MetricsSnapshot,
    /// Modeled cost of the faithful Yao protocol for every comparison run.
    pub yao: YaoLedger,
}

/// Protocol mode tags for the handshake.
pub(crate) const MODE_HORIZONTAL: u64 = 1;
pub(crate) const MODE_VERTICAL: u64 = 2;
pub(crate) const MODE_ARBITRARY: u64 = 3;
pub(crate) const MODE_ENHANCED: u64 = 4;

/// Session state after a successful handshake.
pub(crate) struct Session {
    pub my_keypair: Keypair,
    pub peer_pk: PublicKey,
    /// Peer's record count (horizontal) or record count check (vertical).
    pub peer_n: usize,
    /// Peer's attribute count (differs from ours only for vertical data).
    pub peer_dim: usize,
}

fn comparator_tag(c: Comparator) -> u64 {
    match c {
        Comparator::Yao => 0,
        Comparator::Ideal => 1,
        Comparator::Dgk => 2,
    }
}

fn selection_tag(s: SelectionMethod) -> u64 {
    match s {
        SelectionMethod::RepeatedMin => 0,
        SelectionMethod::QuickSelect => 1,
    }
}

/// Generates a keypair, exchanges public keys, and cross-checks all public
/// protocol metadata. `dim_must_match` is false for vertical data (parties
/// own different attribute slices).
#[allow(clippy::too_many_arguments)] // one parameter per handshake field
pub(crate) fn establish<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    role: Party,
    mode: u64,
    n_mine: usize,
    dim_mine: usize,
    dim_must_match: bool,
    rng: &mut R,
) -> Result<Session, CoreError> {
    let my_keypair = Keypair::generate(cfg.key_bits, rng);
    establish_with_keypair(chan, cfg, my_keypair, role, mode, n_mine, dim_mine, dim_must_match)
}

/// [`establish`] with a caller-provided keypair — a multi-party node reuses
/// one keypair across all of its pairwise sessions.
#[allow(clippy::too_many_arguments)] // one parameter per handshake field
pub(crate) fn establish_with_keypair<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: Keypair,
    role: Party,
    mode: u64,
    n_mine: usize,
    dim_mine: usize,
    dim_must_match: bool,
) -> Result<Session, CoreError> {
    let peer_pk = match role {
        Party::Alice => setup::exchange_keys_alice(chan, &my_keypair)?,
        Party::Bob => setup::exchange_keys_bob(chan, &my_keypair)?,
    };

    let meta: Vec<u64> = vec![
        mode,
        n_mine as u64,
        dim_mine as u64,
        cfg.coord_bound as u64,
        cfg.params.eps_sq,
        cfg.params.min_pts as u64,
        cfg.key_bits as u64,
        comparator_tag(cfg.comparator),
        selection_tag(cfg.selection),
        cfg.mask_bits as u64,
    ];
    chan.send(&meta)?;
    let peer_meta: Vec<u64> = chan.recv()?;
    if peer_meta.len() != meta.len() {
        return Err(CoreError::mismatch("handshake metadata length"));
    }
    let check = |idx: usize, what: &str| -> Result<(), CoreError> {
        if meta[idx] != peer_meta[idx] {
            return Err(CoreError::mismatch(format!(
                "{what}: mine {} vs peer {}",
                meta[idx], peer_meta[idx]
            )));
        }
        Ok(())
    };
    check(0, "protocol mode")?;
    if dim_must_match && meta[2] != 0 && peer_meta[2] != 0 {
        // Dimension 0 means "this side has no points" and matches anything.
        check(2, "dimension")?;
    }
    check(3, "coordinate bound")?;
    check(4, "Eps²")?;
    check(5, "MinPts")?;
    check(6, "key bits")?;
    check(7, "comparator")?;
    check(8, "selection method")?;
    check(9, "mask bits")?;
    // Vertical/arbitrary protocols also need identical record counts, which
    // the caller checks via `peer_n`.
    Ok(Session {
        my_keypair,
        peer_pk,
        peer_n: peer_meta[1] as usize,
        peer_dim: peer_meta[2] as usize,
    })
}

/// Runs the two halves of a protocol on two scoped threads over an
/// in-memory duplex pair.
pub fn run_pair<A, B, RA, RB>(alice_half: A, bob_half: B) -> Result<(RA, RB), CoreError>
where
    A: FnOnce(MemoryChannel) -> Result<RA, CoreError> + Send,
    B: FnOnce(MemoryChannel) -> Result<RB, CoreError> + Send,
    RA: Send,
    RB: Send,
{
    let (alice_chan, bob_chan) = duplex();
    let (alice_result, bob_result) = std::thread::scope(|scope| {
        let alice = scope.spawn(move || alice_half(alice_chan));
        let bob = scope.spawn(move || bob_half(bob_chan));
        (
            alice.join().map_err(|_| CoreError::PartyPanicked("alice")),
            bob.join().map_err(|_| CoreError::PartyPanicked("bob")),
        )
    });
    Ok((alice_result??, bob_result??))
}

/// Runs the basic horizontal protocol (Algorithms 3 & 4) end to end.
pub fn run_horizontal_pair(
    cfg: &ProtocolConfig,
    alice_points: &[Point],
    bob_points: &[Point],
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::horizontal::horizontal_party(&mut chan, cfg, alice_points, Party::Alice, &mut rng_a)
        },
        |mut chan| {
            crate::horizontal::horizontal_party(&mut chan, cfg, bob_points, Party::Bob, &mut rng_b)
        },
    )
}

/// Runs the enhanced horizontal protocol (Algorithms 7 & 8) end to end.
pub fn run_enhanced_pair(
    cfg: &ProtocolConfig,
    alice_points: &[Point],
    bob_points: &[Point],
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::horizontal::enhanced_party(&mut chan, cfg, alice_points, Party::Alice, &mut rng_a)
        },
        |mut chan| {
            crate::horizontal::enhanced_party(&mut chan, cfg, bob_points, Party::Bob, &mut rng_b)
        },
    )
}

/// Runs the vertical protocol (Algorithms 5 & 6) end to end.
pub fn run_vertical_pair(
    cfg: &ProtocolConfig,
    partition: &VerticalPartition,
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::vertical::vertical_party(&mut chan, cfg, &partition.alice, Party::Alice, &mut rng_a)
        },
        |mut chan| {
            crate::vertical::vertical_party(&mut chan, cfg, &partition.bob, Party::Bob, &mut rng_b)
        },
    )
}

/// Runs the arbitrary-partition protocol (§4.4) end to end.
pub fn run_arbitrary_pair(
    cfg: &ProtocolConfig,
    partition: &ArbitraryPartition,
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::arbitrary::arbitrary_party(
                &mut chan,
                cfg,
                &partition.alice_values,
                Party::Alice,
                &mut rng_a,
            )
        },
        |mut chan| {
            crate::arbitrary::arbitrary_party(
                &mut chan,
                cfg,
                &partition.bob_values,
                Party::Bob,
                &mut rng_b,
            )
        },
    )
}
