//! Per-party outputs, the in-process pair conductor, and the engine-facing
//! [`SessionRequest`]/[`run_session`] surface.
//!
//! The protocol entry point is the [`crate::session`] module: a
//! [`crate::session::Participant`] runs any mode over any
//! [`ppds_transport::Channel`] (see `examples/hospitals_horizontal.rs` for
//! a genuine two-process TCP deployment). The `run_*_pair` helpers kept
//! here are deprecated thin wrappers that execute both halves on two
//! threads over an in-memory channel pair.

use crate::config::{ProtocolConfig, YaoLedger};
use crate::error::CoreError;
use crate::partition::{ArbitraryPartition, VerticalPartition};
use crate::session::{run_data_pair, PartyData};
use ppds_dbscan::{Clustering, Point};
use ppds_smc::{LeakageLog, SharingLedger};
use ppds_transport::{duplex, MemoryChannel, MetricsSnapshot};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything one party takes away from a protocol run.
#[derive(Debug)]
pub struct PartyOutput {
    /// The clustering this party learned (its own points for horizontal
    /// protocols; all records for vertical/arbitrary).
    pub clustering: Clustering,
    /// Exactly what this party learned beyond its prescribed output.
    pub leakage: LeakageLog,
    /// Actual bytes/messages this endpoint moved.
    pub traffic: MetricsSnapshot,
    /// Modeled cost of the faithful Yao protocol for every comparison run.
    pub yao: YaoLedger,
    /// Sharing-backend substitution accounting (all zero under Paillier):
    /// exact counts of masked-open comparisons, Beaver triples consumed,
    /// opened field elements, and modeled offline-phase bytes.
    pub sharing: SharingLedger,
}

/// A mode-tagged, self-contained description of one clustering session:
/// everything a scheduler needs to run a complete protocol execution
/// without knowing which protocol family it is.
///
/// This is the engine-callable surface of the drivers: `ppds-engine`
/// queues `SessionRequest`s and executes them with [`run_session`], and
/// because [`run_session`] derives its per-party RNGs from the `seed`
/// exactly like the [`crate::session::Participant`] builder's `.seed(..)`
/// does, an engine-run job is bit-for-bit identical to running the same
/// participants directly with the same seeds.
#[derive(Debug, Clone)]
pub enum SessionRequest {
    /// Basic horizontal protocol (Algorithms 3 & 4).
    Horizontal {
        /// Alice's complete records.
        alice: Vec<Point>,
        /// Bob's complete records.
        bob: Vec<Point>,
    },
    /// Enhanced horizontal protocol (Algorithms 7 & 8).
    Enhanced {
        /// Alice's complete records.
        alice: Vec<Point>,
        /// Bob's complete records.
        bob: Vec<Point>,
    },
    /// Vertical protocol (Algorithms 5 & 6).
    Vertical(VerticalPartition),
    /// Arbitrary-partition protocol (§4.4).
    Arbitrary(ArbitraryPartition),
    /// K-party horizontal generalization (full pairwise mesh).
    Multiparty {
        /// One record set per party (`≥ 2` parties).
        parties: Vec<Vec<Point>>,
    },
}

impl SessionRequest {
    /// Number of parties this session runs.
    pub fn num_parties(&self) -> usize {
        match self {
            SessionRequest::Multiparty { parties } => parties.len(),
            _ => 2,
        }
    }

    /// The protocol family this request selects.
    pub fn mode(&self) -> crate::session::Mode {
        use crate::session::Mode;
        match self {
            SessionRequest::Horizontal { .. } => Mode::Horizontal,
            SessionRequest::Enhanced { .. } => Mode::Enhanced,
            SessionRequest::Vertical(_) => Mode::Vertical,
            SessionRequest::Arbitrary(_) => Mode::Arbitrary,
            SessionRequest::Multiparty { .. } => Mode::Multiparty,
        }
    }

    /// Short protocol-family tag for logs and reports.
    pub fn mode_name(&self) -> &'static str {
        self.mode().name()
    }

    /// The two parties' [`PartyData`] views `(alice, bob)` of this request.
    ///
    /// # Panics
    /// Panics on [`SessionRequest::Multiparty`], which has no two-party
    /// view (use [`crate::session::run_mesh_local`]).
    fn two_party_views(&self) -> (PartyData, PartyData) {
        match self {
            SessionRequest::Horizontal { alice, bob } => (
                PartyData::Horizontal(alice.clone()),
                PartyData::Horizontal(bob.clone()),
            ),
            SessionRequest::Enhanced { alice, bob } => (
                PartyData::Enhanced(alice.clone()),
                PartyData::Enhanced(bob.clone()),
            ),
            SessionRequest::Vertical(partition) => (
                PartyData::Vertical(partition.alice.clone()),
                PartyData::Vertical(partition.bob.clone()),
            ),
            SessionRequest::Arbitrary(partition) => (
                PartyData::Arbitrary(partition.alice_values.clone()),
                PartyData::Arbitrary(partition.bob_values.clone()),
            ),
            SessionRequest::Multiparty { .. } => {
                unreachable!("multiparty requests run over a mesh")
            }
        }
    }
}

/// Runs one [`SessionRequest`] end to end on in-memory channels, deriving
/// the party RNGs from `seed` (Alice gets `seed`, Bob `seed + 1`;
/// multiparty node `i` gets `seed + i`). Returns one [`PartyOutput`] per
/// party in party order.
///
/// For the two-party modes this is exactly equivalent to running two
/// [`crate::session::Participant`]s with `.seed(seed)` / `.seed(seed + 1)`
/// over a duplex
/// pair.
pub fn run_session(
    cfg: &ProtocolConfig,
    request: &SessionRequest,
    seed: u64,
) -> Result<Vec<PartyOutput>, CoreError> {
    if let SessionRequest::Multiparty { parties } = request {
        if parties.len() < 2 {
            return Err(CoreError::config(
                "multiparty session needs at least 2 parties",
            ));
        }
        return Ok(crate::session::run_mesh_local(cfg, parties, seed)?
            .into_iter()
            .map(|outcome| outcome.output)
            .collect());
    }
    let (alice_data, bob_data) = request.two_party_views();
    let (a, b) = run_data_pair(
        cfg,
        alice_data,
        bob_data,
        StdRng::seed_from_u64(seed),
        StdRng::seed_from_u64(seed.wrapping_add(1)),
    )?;
    Ok(vec![a, b])
}

/// Runs the two halves of a protocol on two scoped threads over an
/// in-memory duplex pair.
pub fn run_pair<A, B, RA, RB>(alice_half: A, bob_half: B) -> Result<(RA, RB), CoreError>
where
    A: FnOnce(MemoryChannel) -> Result<RA, CoreError> + Send,
    B: FnOnce(MemoryChannel) -> Result<RB, CoreError> + Send,
    RA: Send,
    RB: Send,
{
    let (alice_chan, bob_chan) = duplex();
    let (alice_result, bob_result) = std::thread::scope(|scope| {
        let alice = scope.spawn(move || alice_half(alice_chan));
        let bob = scope.spawn(move || bob_half(bob_chan));
        (
            alice.join().map_err(|_| CoreError::PartyPanicked("alice")),
            bob.join().map_err(|_| CoreError::PartyPanicked("bob")),
        )
    });
    Ok((alice_result??, bob_result??))
}

/// Runs the basic horizontal protocol (Algorithms 3 & 4) end to end.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::run_participants with PartyData::Horizontal"
)]
pub fn run_horizontal_pair(
    cfg: &ProtocolConfig,
    alice_points: &[Point],
    bob_points: &[Point],
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Horizontal(alice_points.to_vec()),
        PartyData::Horizontal(bob_points.to_vec()),
        rng_a,
        rng_b,
    )
}

/// Runs the enhanced horizontal protocol (Algorithms 7 & 8) end to end.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::run_participants with PartyData::Enhanced"
)]
pub fn run_enhanced_pair(
    cfg: &ProtocolConfig,
    alice_points: &[Point],
    bob_points: &[Point],
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Enhanced(alice_points.to_vec()),
        PartyData::Enhanced(bob_points.to_vec()),
        rng_a,
        rng_b,
    )
}

/// Runs the vertical protocol (Algorithms 5 & 6) end to end.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::run_participants with PartyData::Vertical"
)]
pub fn run_vertical_pair(
    cfg: &ProtocolConfig,
    partition: &VerticalPartition,
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Vertical(partition.alice.clone()),
        PartyData::Vertical(partition.bob.clone()),
        rng_a,
        rng_b,
    )
}

/// Runs the arbitrary-partition protocol (§4.4) end to end.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::run_participants with PartyData::Arbitrary"
)]
pub fn run_arbitrary_pair(
    cfg: &ProtocolConfig,
    partition: &ArbitraryPartition,
    rng_a: StdRng,
    rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_data_pair(
        cfg,
        PartyData::Arbitrary(partition.alice_values.clone()),
        PartyData::Arbitrary(partition.bob_values.clone()),
        rng_a,
        rng_b,
    )
}
