//! Session plumbing: handshake, per-party outputs, and convenience runners
//! that execute both protocol halves on two threads over an in-memory
//! channel pair. Each half is equally runnable over
//! [`ppds_transport::tcp::TcpChannel`] for genuine two-process deployments
//! (see `examples/hospitals_horizontal.rs`).

use crate::config::{ProtocolConfig, YaoLedger};
use crate::error::CoreError;
use crate::partition::{ArbitraryPartition, VerticalPartition};
use ppds_dbscan::{Clustering, Point};
use ppds_paillier::{Keypair, PublicKey};
use ppds_smc::compare::Comparator;
use ppds_smc::kth::SelectionMethod;
use ppds_smc::{setup, LeakageLog, Party};
use ppds_transport::{duplex, Channel, MemoryChannel, MetricsSnapshot};
use rand::rngs::StdRng;
use rand::Rng;

/// Everything one party takes away from a protocol run.
#[derive(Debug)]
pub struct PartyOutput {
    /// The clustering this party learned (its own points for horizontal
    /// protocols; all records for vertical/arbitrary).
    pub clustering: Clustering,
    /// Exactly what this party learned beyond its prescribed output.
    pub leakage: LeakageLog,
    /// Actual bytes/messages this endpoint moved.
    pub traffic: MetricsSnapshot,
    /// Modeled cost of the faithful Yao protocol for every comparison run.
    pub yao: YaoLedger,
}

/// Protocol mode tags for the handshake.
pub(crate) const MODE_HORIZONTAL: u64 = 1;
pub(crate) const MODE_VERTICAL: u64 = 2;
pub(crate) const MODE_ARBITRARY: u64 = 3;
pub(crate) const MODE_ENHANCED: u64 = 4;

/// Session state after a successful handshake.
pub(crate) struct Session {
    pub my_keypair: Keypair,
    pub peer_pk: PublicKey,
    /// Peer's record count (horizontal) or record count check (vertical).
    pub peer_n: usize,
    /// Peer's attribute count (differs from ours only for vertical data).
    pub peer_dim: usize,
}

fn comparator_tag(c: Comparator) -> u64 {
    match c {
        Comparator::Yao => 0,
        Comparator::Ideal => 1,
        Comparator::Dgk => 2,
    }
}

fn selection_tag(s: SelectionMethod) -> u64 {
    match s {
        SelectionMethod::RepeatedMin => 0,
        SelectionMethod::QuickSelect => 1,
    }
}

/// Generates a keypair, exchanges public keys, and cross-checks all public
/// protocol metadata. `dim_must_match` is false for vertical data (parties
/// own different attribute slices).
#[allow(clippy::too_many_arguments)] // one parameter per handshake field
pub(crate) fn establish<C: Channel, R: Rng + ?Sized>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    role: Party,
    mode: u64,
    n_mine: usize,
    dim_mine: usize,
    dim_must_match: bool,
    rng: &mut R,
) -> Result<Session, CoreError> {
    let my_keypair = Keypair::generate(cfg.key_bits, rng);
    establish_with_keypair(
        chan,
        cfg,
        my_keypair,
        role,
        mode,
        n_mine,
        dim_mine,
        dim_must_match,
    )
}

/// [`establish`] with a caller-provided keypair — a multi-party node reuses
/// one keypair across all of its pairwise sessions.
#[allow(clippy::too_many_arguments)] // one parameter per handshake field
pub(crate) fn establish_with_keypair<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: Keypair,
    role: Party,
    mode: u64,
    n_mine: usize,
    dim_mine: usize,
    dim_must_match: bool,
) -> Result<Session, CoreError> {
    let peer_pk = match role {
        Party::Alice => setup::exchange_keys_alice(chan, &my_keypair)?,
        Party::Bob => setup::exchange_keys_bob(chan, &my_keypair)?,
    };

    let meta: Vec<u64> = vec![
        mode,
        n_mine as u64,
        dim_mine as u64,
        cfg.coord_bound as u64,
        cfg.params.eps_sq,
        cfg.params.min_pts as u64,
        cfg.key_bits as u64,
        comparator_tag(cfg.comparator),
        selection_tag(cfg.selection),
        cfg.mask_bits as u64,
        cfg.batching as u64,
    ];
    chan.send(&meta)?;
    let peer_meta: Vec<u64> = chan.recv()?;
    if peer_meta.len() != meta.len() {
        return Err(CoreError::mismatch("handshake metadata length"));
    }
    let check = |idx: usize, what: &str| -> Result<(), CoreError> {
        if meta[idx] != peer_meta[idx] {
            return Err(CoreError::mismatch(format!(
                "{what}: mine {} vs peer {}",
                meta[idx], peer_meta[idx]
            )));
        }
        Ok(())
    };
    check(0, "protocol mode")?;
    if dim_must_match && meta[2] != 0 && peer_meta[2] != 0 {
        // Dimension 0 means "this side has no points" and matches anything.
        check(2, "dimension")?;
    }
    check(3, "coordinate bound")?;
    check(4, "Eps²")?;
    check(5, "MinPts")?;
    check(6, "key bits")?;
    check(7, "comparator")?;
    check(8, "selection method")?;
    check(9, "mask bits")?;
    check(10, "batching")?;
    // Vertical/arbitrary protocols also need identical record counts, which
    // the caller checks via `peer_n`.
    Ok(Session {
        my_keypair,
        peer_pk,
        peer_n: peer_meta[1] as usize,
        peer_dim: peer_meta[2] as usize,
    })
}

/// A mode-tagged, self-contained description of one clustering session:
/// everything a scheduler needs to run a complete protocol execution
/// without knowing which protocol family it is.
///
/// This is the engine-callable surface of the drivers: `ppds-engine`
/// queues `SessionRequest`s and executes them with [`run_session`], and
/// because [`run_session`] derives its per-party RNGs from the `seed`
/// exactly like the `run_*_pair` helpers do, an engine-run job is
/// bit-for-bit identical to a direct driver call with the same seed.
#[derive(Debug, Clone)]
pub enum SessionRequest {
    /// Basic horizontal protocol (Algorithms 3 & 4).
    Horizontal {
        /// Alice's complete records.
        alice: Vec<Point>,
        /// Bob's complete records.
        bob: Vec<Point>,
    },
    /// Enhanced horizontal protocol (Algorithms 7 & 8).
    Enhanced {
        /// Alice's complete records.
        alice: Vec<Point>,
        /// Bob's complete records.
        bob: Vec<Point>,
    },
    /// Vertical protocol (Algorithms 5 & 6).
    Vertical(VerticalPartition),
    /// Arbitrary-partition protocol (§4.4).
    Arbitrary(ArbitraryPartition),
    /// K-party horizontal generalization (full pairwise mesh).
    Multiparty {
        /// One record set per party (`≥ 2` parties).
        parties: Vec<Vec<Point>>,
    },
}

impl SessionRequest {
    /// Number of parties this session runs.
    pub fn num_parties(&self) -> usize {
        match self {
            SessionRequest::Multiparty { parties } => parties.len(),
            _ => 2,
        }
    }

    /// Short protocol-family tag for logs and reports.
    pub fn mode_name(&self) -> &'static str {
        match self {
            SessionRequest::Horizontal { .. } => "horizontal",
            SessionRequest::Enhanced { .. } => "enhanced",
            SessionRequest::Vertical(_) => "vertical",
            SessionRequest::Arbitrary(_) => "arbitrary",
            SessionRequest::Multiparty { .. } => "multiparty",
        }
    }
}

/// Runs one [`SessionRequest`] end to end on in-memory channels, deriving
/// the party RNGs from `seed` (Alice gets `seed`, Bob `seed + 1`;
/// multiparty node `i` gets `seed + i`). Returns one [`PartyOutput`] per
/// party in party order.
///
/// For the two-party modes this is exactly equivalent to calling the
/// matching `run_*_pair` helper with `StdRng::seed_from_u64(seed)` /
/// `seed_from_u64(seed + 1)`.
pub fn run_session(
    cfg: &ProtocolConfig,
    request: &SessionRequest,
    seed: u64,
) -> Result<Vec<PartyOutput>, CoreError> {
    use rand::SeedableRng;
    let rng_a = StdRng::seed_from_u64(seed);
    let rng_b = StdRng::seed_from_u64(seed.wrapping_add(1));
    match request {
        SessionRequest::Horizontal { alice, bob } => {
            let (a, b) = run_horizontal_pair(cfg, alice, bob, rng_a, rng_b)?;
            Ok(vec![a, b])
        }
        SessionRequest::Enhanced { alice, bob } => {
            let (a, b) = run_enhanced_pair(cfg, alice, bob, rng_a, rng_b)?;
            Ok(vec![a, b])
        }
        SessionRequest::Vertical(partition) => {
            let (a, b) = run_vertical_pair(cfg, partition, rng_a, rng_b)?;
            Ok(vec![a, b])
        }
        SessionRequest::Arbitrary(partition) => {
            let (a, b) = run_arbitrary_pair(cfg, partition, rng_a, rng_b)?;
            Ok(vec![a, b])
        }
        SessionRequest::Multiparty { parties } => {
            if parties.len() < 2 {
                return Err(CoreError::config(
                    "multiparty session needs at least 2 parties",
                ));
            }
            crate::multiparty::run_multiparty_horizontal(cfg, parties, seed)
        }
    }
}

/// Runs the two halves of a protocol on two scoped threads over an
/// in-memory duplex pair.
pub fn run_pair<A, B, RA, RB>(alice_half: A, bob_half: B) -> Result<(RA, RB), CoreError>
where
    A: FnOnce(MemoryChannel) -> Result<RA, CoreError> + Send,
    B: FnOnce(MemoryChannel) -> Result<RB, CoreError> + Send,
    RA: Send,
    RB: Send,
{
    let (alice_chan, bob_chan) = duplex();
    let (alice_result, bob_result) = std::thread::scope(|scope| {
        let alice = scope.spawn(move || alice_half(alice_chan));
        let bob = scope.spawn(move || bob_half(bob_chan));
        (
            alice.join().map_err(|_| CoreError::PartyPanicked("alice")),
            bob.join().map_err(|_| CoreError::PartyPanicked("bob")),
        )
    });
    Ok((alice_result??, bob_result??))
}

/// Runs the basic horizontal protocol (Algorithms 3 & 4) end to end.
pub fn run_horizontal_pair(
    cfg: &ProtocolConfig,
    alice_points: &[Point],
    bob_points: &[Point],
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::horizontal::horizontal_party(
                &mut chan,
                cfg,
                alice_points,
                Party::Alice,
                &mut rng_a,
            )
        },
        |mut chan| {
            crate::horizontal::horizontal_party(&mut chan, cfg, bob_points, Party::Bob, &mut rng_b)
        },
    )
}

/// Runs the enhanced horizontal protocol (Algorithms 7 & 8) end to end.
pub fn run_enhanced_pair(
    cfg: &ProtocolConfig,
    alice_points: &[Point],
    bob_points: &[Point],
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::horizontal::enhanced_party(
                &mut chan,
                cfg,
                alice_points,
                Party::Alice,
                &mut rng_a,
            )
        },
        |mut chan| {
            crate::horizontal::enhanced_party(&mut chan, cfg, bob_points, Party::Bob, &mut rng_b)
        },
    )
}

/// Runs the vertical protocol (Algorithms 5 & 6) end to end.
pub fn run_vertical_pair(
    cfg: &ProtocolConfig,
    partition: &VerticalPartition,
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::vertical::vertical_party(
                &mut chan,
                cfg,
                &partition.alice,
                Party::Alice,
                &mut rng_a,
            )
        },
        |mut chan| {
            crate::vertical::vertical_party(&mut chan, cfg, &partition.bob, Party::Bob, &mut rng_b)
        },
    )
}

/// Runs the arbitrary-partition protocol (§4.4) end to end.
pub fn run_arbitrary_pair(
    cfg: &ProtocolConfig,
    partition: &ArbitraryPartition,
    mut rng_a: StdRng,
    mut rng_b: StdRng,
) -> Result<(PartyOutput, PartyOutput), CoreError> {
    run_pair(
        |mut chan| {
            crate::arbitrary::arbitrary_party(
                &mut chan,
                cfg,
                &partition.alice_values,
                Party::Alice,
                &mut rng_a,
            )
        },
        |mut chan| {
            crate::arbitrary::arbitrary_party(
                &mut chan,
                cfg,
                &partition.bob_values,
                Party::Bob,
                &mut rng_b,
            )
        },
    )
}
