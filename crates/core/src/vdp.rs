//! Protocol VDP (§4.3): secure `dist²(d_x, d_y) ≤ Eps²` for vertically
//! partitioned records.
//!
//! Each party computes its local squared-delta sum over the attributes it
//! owns — Alice `α = Σ_{k ≤ l} (d_{x,k} − d_{y,k})²`, Bob
//! `β = Σ_{k > l} (d_{x,k} − d_{y,k})²` — and a single Yao comparison
//! decides `α ≤ Eps² − β`. No homomorphic encryption is needed at all;
//! the whole cost is the comparison (the paper's `O(c2·n0·n²)` bound).
//!
//! The comparison itself runs through the session's [`SmcBackend`], so a
//! sharing-backend session replaces the garbled-circuit stand-in with a
//! shared-bit `share_less_than` over `Z_2^64` without touching this module's
//! dataflow.

use crate::config::{ProtocolConfig, YaoLedger};
use crate::domain::vdp_domain;
use ppds_smc::compare::CmpOp;
use ppds_smc::{Party, ProtocolContext, SharingLedger, SmcBackend, SmcError};
use ppds_transport::Channel;

/// Local squared-delta sum between two attribute slices (each party calls
/// this on its own slice of records `x` and `y`).
pub fn local_delta_sq(x: &ppds_dbscan::Point, y: &ppds_dbscan::Point) -> u64 {
    ppds_dbscan::dist_sq(x, y)
}

/// Alice's side of one VDP comparison. `alpha` is her local squared-delta
/// sum; `total_dim` is the full record dimension `m` (needed to agree on
/// the comparison domain); `ctx` is this comparison's record scope
/// (`step_ctx.at(record)`). Returns `dist² ≤ Eps²`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn vdp_compare_alice<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    alpha: u64,
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    ledger.record(cfg.key_bits, domain.n0());
    backend.compare(
        chan,
        Party::Alice,
        i64::try_from(alpha).expect("α fits i64 on a validated lattice"),
        CmpOp::Leq,
        &domain,
        ctx,
        acct,
    )
}

/// Bob's side: `beta` is his local squared-delta sum.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn vdp_compare_bob<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    beta: u64,
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<bool, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    ledger.record(cfg.key_bits, domain.n0());
    let j_val = cfg.params.eps_sq as i64 - i64::try_from(beta).expect("β fits i64");
    backend.compare(chan, Party::Bob, j_val, CmpOp::Leq, &domain, ctx, acct)
}

/// One VDP decision per entry of `alphas` (Alice's local squared-delta
/// sums for a whole candidate set), dispatched on `cfg.batching`: batched
/// mode packs the set into a constant number of wire rounds, reference
/// mode runs one [`vdp_compare_alice`] ping-pong per entry. Outcomes are
/// identical either way. `records` carries one stable record id per entry
/// — the per-comparison context path is keyed by id, not position, so a
/// pruned (sparse) candidate set draws the same randomness for record `y`
/// as the exhaustive set does (both parties walk identical paths as long
/// as they enumerate the same candidates in the same order).
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn vdp_compare_set_alice<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    alphas: &[u64],
    records: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    debug_assert_eq!(alphas.len(), records.len(), "one record id per entry");
    if cfg.batching {
        return vdp_compare_batch_alice(chan, cfg, backend, alphas, total_dim, ctx, ledger, acct);
    }
    alphas
        .iter()
        .zip(records)
        .map(|(&alpha, &record)| {
            vdp_compare_alice(
                chan,
                cfg,
                backend,
                alpha,
                total_dim,
                &ctx.at(record),
                ledger,
                acct,
            )
        })
        .collect()
}

/// Bob's side of [`vdp_compare_set_alice`].
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn vdp_compare_set_bob<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    betas: &[u64],
    records: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    debug_assert_eq!(betas.len(), records.len(), "one record id per entry");
    if cfg.batching {
        return vdp_compare_batch_bob(chan, cfg, backend, betas, total_dim, ctx, ledger, acct);
    }
    betas
        .iter()
        .zip(records)
        .map(|(&beta, &record)| {
            vdp_compare_bob(
                chan,
                cfg,
                backend,
                beta,
                total_dim,
                &ctx.at(record),
                ledger,
                acct,
            )
        })
        .collect()
}

/// Round-batched Alice side: one VDP decision per entry of `alphas` (her
/// local squared-delta sums for a whole candidate set), all packed into a
/// constant number of wire rounds. Outcome `r[i]` equals what
/// [`vdp_compare_alice`] would return for `alphas[i]`.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn vdp_compare_batch_alice<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    alphas: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    let values: Vec<i64> = alphas
        .iter()
        .map(|&alpha| {
            ledger.record(cfg.key_bits, domain.n0());
            i64::try_from(alpha).expect("α fits i64 on a validated lattice")
        })
        .collect();
    backend.compare_batch(chan, Party::Alice, &values, CmpOp::Leq, &domain, ctx, acct)
}

/// Round-batched Bob side of [`vdp_compare_batch_alice`]; `betas` are his
/// local squared-delta sums for the same candidate set, in the same order.
#[allow(clippy::too_many_arguments)] // mirrors the protocol's parameter list
pub fn vdp_compare_batch_bob<C: Channel, B: SmcBackend>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    backend: &B,
    betas: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
    acct: &mut SharingLedger,
) -> Result<Vec<bool>, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    let values: Vec<i64> = betas
        .iter()
        .map(|&beta| {
            ledger.record(cfg.key_bits, domain.n0());
            cfg.params.eps_sq as i64 - i64::try_from(beta).expect("β fits i64")
        })
        .collect();
    backend.compare_batch(chan, Party::Bob, &values, CmpOp::Leq, &domain, ctx, acct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::paillier_backend;
    use crate::test_helpers::{ctx, rng};
    use ppds_dbscan::{dist_sq, DbscanParams, Point};
    use ppds_paillier::Keypair;
    use ppds_smc::compare::Comparator;
    use ppds_transport::duplex;
    use std::sync::OnceLock;

    fn alice_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(33)))
    }

    fn bob_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(34)))
    }

    fn run(cfg: ProtocolConfig, alpha: u64, beta: u64, dim: usize) -> bool {
        let (mut achan, mut bchan) = duplex();
        let a = std::thread::spawn(move || {
            let backend = paillier_backend(&cfg, alice_kp(), &bob_kp().public, dim);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            vdp_compare_alice(
                &mut achan,
                &cfg,
                &backend,
                alpha,
                dim,
                &ctx(1),
                &mut ledger,
                &mut acct,
            )
            .unwrap()
        });
        let backend = paillier_backend(&cfg, bob_kp(), &alice_kp().public, dim);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let bob = vdp_compare_bob(
            &mut bchan,
            &cfg,
            &backend,
            beta,
            dim,
            &ctx(2),
            &mut ledger,
            &mut acct,
        )
        .unwrap();
        let alice = a.join().unwrap();
        assert_eq!(alice, bob);
        alice
    }

    #[test]
    fn decides_exactly_alpha_plus_beta_vs_eps() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 10,
                min_pts: 2,
            },
            3,
        );
        for (alpha, beta) in [
            (0u64, 0u64),
            (5, 5),
            (5, 6),
            (10, 0),
            (0, 10),
            (11, 0),
            (3, 4),
        ] {
            let expect = alpha + beta <= 10;
            assert_eq!(run(cfg, alpha, beta, 2), expect, "α={alpha} β={beta}");
        }
    }

    #[test]
    fn batch_matches_singles_in_three_rounds() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 10,
                min_pts: 2,
            },
            3,
        );
        let alphas: Vec<u64> = vec![0, 5, 5, 10, 0, 11, 3];
        let betas: Vec<u64> = vec![0, 5, 6, 0, 10, 0, 4];
        let expect: Vec<bool> = alphas
            .iter()
            .zip(&betas)
            .map(|(&a, &b)| a + b <= 10)
            .collect();
        let (mut achan, mut bchan) = duplex();
        let alphas2 = alphas.clone();
        let a = std::thread::spawn(move || {
            let backend = paillier_backend(&cfg, alice_kp(), &bob_kp().public, 2);
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let out = vdp_compare_batch_alice(
                &mut achan,
                &cfg,
                &backend,
                &alphas2,
                2,
                &ctx(3),
                &mut ledger,
                &mut acct,
            )
            .unwrap();
            (out, ledger, achan.metrics())
        });
        let backend = paillier_backend(&cfg, bob_kp(), &alice_kp().public, 2);
        let mut ledger = YaoLedger::default();
        let mut acct = SharingLedger::default();
        let bob = vdp_compare_batch_bob(
            &mut bchan,
            &cfg,
            &backend,
            &betas,
            2,
            &ctx(4),
            &mut ledger,
            &mut acct,
        )
        .unwrap();
        let (alice, a_ledger, metrics) = a.join().unwrap();
        assert_eq!(alice, expect);
        assert_eq!(bob, expect);
        assert_eq!(a_ledger.comparisons, alphas.len() as u64);
        assert_eq!(metrics.total_rounds(), 3, "one Ideal exchange for all 7");
    }

    #[test]
    fn split_records_match_full_distance() {
        let cfg = ProtocolConfig::new_with_yao(
            DbscanParams {
                eps_sq: 9,
                min_pts: 2,
            },
            3,
        );
        let full_x = Point::new(vec![1, -2, 3, 0]);
        let full_y = Point::new(vec![0, -2, 1, 2]);
        // Vertical split at attribute 2.
        let alpha = local_delta_sq(
            &Point::new(full_x.coords()[..2].to_vec()),
            &Point::new(full_y.coords()[..2].to_vec()),
        );
        let beta = local_delta_sq(
            &Point::new(full_x.coords()[2..].to_vec()),
            &Point::new(full_y.coords()[2..].to_vec()),
        );
        let expect = dist_sq(&full_x, &full_y) <= 9;
        assert_eq!(run(cfg, alpha, beta, 4), expect);
        assert!(matches!(cfg.comparator, Comparator::Yao));
    }

    #[test]
    fn sharing_backend_matches_plain_comparisons() {
        use ppds_smc::{DealerTape, SharingBackend};
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 10,
                min_pts: 2,
            },
            3,
        );
        let alphas: Vec<u64> = vec![0, 5, 5, 10, 0, 11, 3];
        let betas: Vec<u64> = vec![0, 5, 6, 0, 10, 0, 4];
        let expect: Vec<bool> = alphas
            .iter()
            .zip(&betas)
            .map(|(&a, &b)| a + b <= 10)
            .collect();
        let records: Vec<u64> = (0..alphas.len() as u64).collect();
        for batching in [false, true] {
            let run_cfg = cfg.with_batching(batching);
            let mk = move || SharingBackend {
                tape: DealerTape::from_seed(77),
                batching,
                dot_mask_bound: 1 << 20,
            };
            let (mut achan, mut bchan) = duplex();
            let alphas2 = alphas.clone();
            let records2 = records.clone();
            let a = std::thread::spawn(move || {
                let mut ledger = YaoLedger::default();
                let mut acct = SharingLedger::default();
                let out = vdp_compare_set_alice(
                    &mut achan,
                    &run_cfg,
                    &mk(),
                    &alphas2,
                    &records2,
                    2,
                    &ctx(3),
                    &mut ledger,
                    &mut acct,
                )
                .unwrap();
                (out, acct)
            });
            let mut ledger = YaoLedger::default();
            let mut acct = SharingLedger::default();
            let bob = vdp_compare_set_bob(
                &mut bchan,
                &run_cfg,
                &mk(),
                &betas,
                &records,
                2,
                &ctx(4),
                &mut ledger,
                &mut acct,
            )
            .unwrap();
            let (alice, a_acct) = a.join().unwrap();
            assert_eq!(alice, expect, "batching={batching}");
            assert_eq!(bob, expect, "batching={batching}");
            assert_eq!(a_acct.compares, alphas.len() as u64);
            assert!(
                a_acct.bit_triples > 0,
                "shared-bit compares consume triples"
            );
        }
    }
}
