//! Protocol VDP (§4.3): secure `dist²(d_x, d_y) ≤ Eps²` for vertically
//! partitioned records.
//!
//! Each party computes its local squared-delta sum over the attributes it
//! owns — Alice `α = Σ_{k ≤ l} (d_{x,k} − d_{y,k})²`, Bob
//! `β = Σ_{k > l} (d_{x,k} − d_{y,k})²` — and a single Yao comparison
//! decides `α ≤ Eps² − β`. No homomorphic encryption is needed at all;
//! the whole cost is the comparison (the paper's `O(c2·n0·n²)` bound).

use crate::config::{ProtocolConfig, YaoLedger};
use crate::domain::vdp_domain;
use ppds_paillier::{Keypair, PublicKey};
use ppds_smc::compare::{
    compare_alice, compare_batch_alice, compare_batch_bob, compare_bob, CmpOp,
};
use ppds_smc::{ProtocolContext, SmcError};
use ppds_transport::Channel;

/// Local squared-delta sum between two attribute slices (each party calls
/// this on its own slice of records `x` and `y`).
pub fn local_delta_sq(x: &ppds_dbscan::Point, y: &ppds_dbscan::Point) -> u64 {
    ppds_dbscan::dist_sq(x, y)
}

/// Alice's side of one VDP comparison. `alpha` is her local squared-delta
/// sum; `total_dim` is the full record dimension `m` (needed to agree on
/// the comparison domain); `ctx` is this comparison's record scope
/// (`step_ctx.at(record)`). Returns `dist² ≤ Eps²`.
pub fn vdp_compare_alice<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    alpha: u64,
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<bool, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    ledger.record(cfg.key_bits, domain.n0());
    compare_alice(
        cfg.comparator,
        chan,
        my_keypair,
        i64::try_from(alpha).expect("α fits i64 on a validated lattice"),
        CmpOp::Leq,
        &domain,
        cfg.packing,
        ctx,
    )
}

/// Bob's side: `beta` is his local squared-delta sum.
pub fn vdp_compare_bob<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    alice_pk: &PublicKey,
    beta: u64,
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<bool, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    ledger.record(cfg.key_bits, domain.n0());
    let j_val = cfg.params.eps_sq as i64 - i64::try_from(beta).expect("β fits i64");
    compare_bob(
        cfg.comparator,
        chan,
        alice_pk,
        j_val,
        CmpOp::Leq,
        &domain,
        cfg.packing,
        ctx,
    )
}

/// One VDP decision per entry of `alphas` (Alice's local squared-delta
/// sums for a whole candidate set), dispatched on `cfg.batching`: batched
/// mode packs the set into a constant number of wire rounds, reference
/// mode runs one [`vdp_compare_alice`] ping-pong per entry. Outcomes are
/// identical either way.
pub fn vdp_compare_set_alice<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    alphas: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<Vec<bool>, SmcError> {
    if cfg.batching {
        return vdp_compare_batch_alice(chan, cfg, my_keypair, alphas, total_dim, ctx, ledger);
    }
    alphas
        .iter()
        .enumerate()
        .map(|(i, &alpha)| {
            vdp_compare_alice(
                chan,
                cfg,
                my_keypair,
                alpha,
                total_dim,
                &ctx.at(i as u64),
                ledger,
            )
        })
        .collect()
}

/// Bob's side of [`vdp_compare_set_alice`].
pub fn vdp_compare_set_bob<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    alice_pk: &PublicKey,
    betas: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<Vec<bool>, SmcError> {
    if cfg.batching {
        return vdp_compare_batch_bob(chan, cfg, alice_pk, betas, total_dim, ctx, ledger);
    }
    betas
        .iter()
        .enumerate()
        .map(|(i, &beta)| {
            vdp_compare_bob(
                chan,
                cfg,
                alice_pk,
                beta,
                total_dim,
                &ctx.at(i as u64),
                ledger,
            )
        })
        .collect()
}

/// Round-batched Alice side: one VDP decision per entry of `alphas` (her
/// local squared-delta sums for a whole candidate set), all packed into a
/// constant number of wire rounds. Outcome `r[i]` equals what
/// [`vdp_compare_alice`] would return for `alphas[i]`.
pub fn vdp_compare_batch_alice<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_keypair: &Keypair,
    alphas: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<Vec<bool>, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    let values: Vec<i64> = alphas
        .iter()
        .map(|&alpha| {
            ledger.record(cfg.key_bits, domain.n0());
            i64::try_from(alpha).expect("α fits i64 on a validated lattice")
        })
        .collect();
    compare_batch_alice(
        cfg.comparator,
        chan,
        my_keypair,
        &values,
        CmpOp::Leq,
        &domain,
        cfg.packing,
        ctx,
    )
}

/// Round-batched Bob side of [`vdp_compare_batch_alice`]; `betas` are his
/// local squared-delta sums for the same candidate set, in the same order.
pub fn vdp_compare_batch_bob<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    alice_pk: &PublicKey,
    betas: &[u64],
    total_dim: usize,
    ctx: &ProtocolContext,
    ledger: &mut YaoLedger,
) -> Result<Vec<bool>, SmcError> {
    let domain = vdp_domain(cfg, total_dim);
    let values: Vec<i64> = betas
        .iter()
        .map(|&beta| {
            ledger.record(cfg.key_bits, domain.n0());
            cfg.params.eps_sq as i64 - i64::try_from(beta).expect("β fits i64")
        })
        .collect();
    compare_batch_bob(
        cfg.comparator,
        chan,
        alice_pk,
        &values,
        CmpOp::Leq,
        &domain,
        cfg.packing,
        ctx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_helpers::{ctx, rng};
    use ppds_dbscan::{dist_sq, DbscanParams, Point};
    use ppds_smc::compare::Comparator;
    use ppds_transport::duplex;
    use std::sync::OnceLock;

    fn alice_kp() -> &'static Keypair {
        static KP: OnceLock<Keypair> = OnceLock::new();
        KP.get_or_init(|| Keypair::generate(256, &mut rng(33)))
    }

    fn run(cfg: ProtocolConfig, alpha: u64, beta: u64, dim: usize) -> bool {
        let (mut achan, mut bchan) = duplex();
        let a = std::thread::spawn(move || {
            let mut ledger = YaoLedger::default();
            vdp_compare_alice(
                &mut achan,
                &cfg,
                alice_kp(),
                alpha,
                dim,
                &ctx(1),
                &mut ledger,
            )
            .unwrap()
        });
        let mut ledger = YaoLedger::default();
        let bob = vdp_compare_bob(
            &mut bchan,
            &cfg,
            &alice_kp().public,
            beta,
            dim,
            &ctx(2),
            &mut ledger,
        )
        .unwrap();
        let alice = a.join().unwrap();
        assert_eq!(alice, bob);
        alice
    }

    #[test]
    fn decides_exactly_alpha_plus_beta_vs_eps() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 10,
                min_pts: 2,
            },
            3,
        );
        for (alpha, beta) in [
            (0u64, 0u64),
            (5, 5),
            (5, 6),
            (10, 0),
            (0, 10),
            (11, 0),
            (3, 4),
        ] {
            let expect = alpha + beta <= 10;
            assert_eq!(run(cfg, alpha, beta, 2), expect, "α={alpha} β={beta}");
        }
    }

    #[test]
    fn batch_matches_singles_in_three_rounds() {
        let cfg = ProtocolConfig::new(
            DbscanParams {
                eps_sq: 10,
                min_pts: 2,
            },
            3,
        );
        let alphas: Vec<u64> = vec![0, 5, 5, 10, 0, 11, 3];
        let betas: Vec<u64> = vec![0, 5, 6, 0, 10, 0, 4];
        let expect: Vec<bool> = alphas
            .iter()
            .zip(&betas)
            .map(|(&a, &b)| a + b <= 10)
            .collect();
        let (mut achan, mut bchan) = duplex();
        let alphas2 = alphas.clone();
        let a = std::thread::spawn(move || {
            let mut ledger = YaoLedger::default();
            let out = vdp_compare_batch_alice(
                &mut achan,
                &cfg,
                alice_kp(),
                &alphas2,
                2,
                &ctx(3),
                &mut ledger,
            )
            .unwrap();
            (out, ledger, achan.metrics())
        });
        let mut ledger = YaoLedger::default();
        let bob = vdp_compare_batch_bob(
            &mut bchan,
            &cfg,
            &alice_kp().public,
            &betas,
            2,
            &ctx(4),
            &mut ledger,
        )
        .unwrap();
        let (alice, a_ledger, metrics) = a.join().unwrap();
        assert_eq!(alice, expect);
        assert_eq!(bob, expect);
        assert_eq!(a_ledger.comparisons, alphas.len() as u64);
        assert_eq!(metrics.total_rounds(), 3, "one Ideal exchange for all 7");
    }

    #[test]
    fn split_records_match_full_distance() {
        let cfg = ProtocolConfig::new_with_yao(
            DbscanParams {
                eps_sq: 9,
                min_pts: 2,
            },
            3,
        );
        let full_x = Point::new(vec![1, -2, 3, 0]);
        let full_y = Point::new(vec![0, -2, 1, 2]);
        // Vertical split at attribute 2.
        let alpha = local_delta_sq(
            &Point::new(full_x.coords()[..2].to_vec()),
            &Point::new(full_y.coords()[..2].to_vec()),
        );
        let beta = local_delta_sq(
            &Point::new(full_x.coords()[2..].to_vec()),
            &Point::new(full_y.coords()[2..].to_vec()),
        );
        let expect = dist_sq(&full_x, &full_y) <= 9;
        assert_eq!(run(cfg, alpha, beta, 4), expect);
        assert!(matches!(cfg.comparator, Comparator::Yao));
    }
}
