//! Session-level construction of the pluggable SMC backend.
//!
//! Every driver obtains its [`AnyBackend`] here from the negotiated
//! [`Session`] and the public [`ProtocolConfig`]: the Paillier variant
//! borrows the session keys and carries the dimension-dependent packing
//! layouts and mask bounds the homomorphic path used before the trait
//! existed (so transcripts stay byte-identical), the sharing variant
//! carries the handshake-agreed [`DealerTape`](ppds_smc::DealerTape) and
//! the same dot mask bound clamped to the ring-safe range. See
//! DESIGN.md §14.

use crate::config::ProtocolConfig;
use crate::session::{ModeContext, Session};
use ppds_bigint::BigUint;
use ppds_paillier::{Keypair, PublicKey};
use ppds_smc::backend::clamp_sharing_bound;
use ppds_smc::{AnyBackend, BackendKind, DealerTape, PaillierBackend, SharingBackend};

/// The homomorphic backend exactly as the drivers configured the direct
/// Paillier calls: comparator, packing flags, and mask bounds all derived
/// from the public config and the data dimension.
pub(crate) fn paillier_backend<'a>(
    cfg: &ProtocolConfig,
    my_keypair: &'a Keypair,
    peer_pk: &'a PublicKey,
    dim: usize,
) -> PaillierBackend<'a> {
    PaillierBackend {
        my_keypair,
        peer_pk,
        comparator: cfg.comparator,
        packed: cfg.packing,
        batching: cfg.batching,
        mul_packing: crate::hdp::mul_packing(cfg, dim),
        dot_packing: crate::enhanced::dot_packing(cfg, dim),
        mul_mask_bound: cfg.mul_mask_bound(),
        dot_mask_bound: BigUint::from_u64(cfg.enhanced_mask_bound(dim)),
    }
}

/// The secret-sharing backend for a session that negotiated `tape`.
pub(crate) fn sharing_backend(
    cfg: &ProtocolConfig,
    tape: DealerTape,
    dim: usize,
) -> SharingBackend {
    SharingBackend {
        tape,
        batching: cfg.batching,
        dot_mask_bound: clamp_sharing_bound(&BigUint::from_u64(cfg.enhanced_mask_bound(dim))),
    }
}

/// The concrete backend a session runs its SMC workhorses on, for data of
/// dimension `dim`.
pub(crate) fn backend_for<'a>(
    cfg: &ProtocolConfig,
    session: &'a Session,
    dim: usize,
) -> AnyBackend<'a> {
    match cfg.backend {
        BackendKind::Paillier => AnyBackend::Paillier(paillier_backend(
            cfg,
            &session.my_keypair,
            &session.peer_pk,
            dim,
        )),
        BackendKind::Sharing => AnyBackend::Sharing(sharing_backend(
            cfg,
            session.tape.expect("sharing sessions negotiate a tape"),
            dim,
        )),
    }
}

impl ModeContext<'_> {
    /// This session's SMC backend for data of dimension `dim`.
    pub(crate) fn backend(&self, dim: usize) -> AnyBackend<'_> {
        backend_for(self.cfg, self.session, dim)
    }
}
