//! The vertically partitioned DBSCAN driver (Algorithms 5 & 6).
//!
//! Both parties hold an attribute slice of *every* record, so they run one
//! shared DBSCAN loop in lockstep over the common record index space; each
//! `dist ≤ Eps` test is a single protocol-VDP comparison whose outcome both
//! sides learn. Because the control flow is a deterministic function of
//! those shared outcomes, the two parties compute byte-identical
//! clusterings without exchanging any labels — and that clustering is
//! *exactly* the single-party DBSCAN of the joined records (verified
//! label-for-label by the integration tests).
//!
//! Runs through the shared [`crate::session`] dispatch; the
//! [`crate::session::Participant`] builder is the supported entry point.

use crate::config::ProtocolConfig;
use crate::driver::PartyOutput;
use crate::error::CoreError;
use crate::session::{
    run_two_party, HandshakeProfile, Mode, ModeContext, ModeDriver, Session, SessionLog,
};
use crate::vdp::{local_delta_sq, vdp_compare_set_alice, vdp_compare_set_bob};
use ppds_dbscan::{Clustering, DbscanParams, Label, Point};
use ppds_observe::trace;
use ppds_smc::{LeakageEvent, LeakageLog, Party, ProtocolContext};
use ppds_transport::Channel;
use std::collections::VecDeque;

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Unclassified,
    Noise,
    Cluster(usize),
}

/// The shared lockstep DBSCAN engine: Algorithm 5/6 where every region
/// query hands its candidate set to one oracle call, which returns one
/// joint `dist² ≤ Eps²` bit per candidate. A batching driver answers the
/// whole set in O(1) wire rounds; an unbatched driver loops one comparison
/// per candidate inside the oracle. `candidates_for` supplies each query's
/// candidate partners in ascending order, excluding the query record
/// itself — the exhaustive all-pairs set or a pruned (band-intersecting)
/// subset; both parties must derive the identical sequence, which they do
/// because the generator is a function of public/agreed data only.
/// Also used by the arbitrary-partition driver.
pub(crate) fn lockstep_dbscan<G, F>(
    n: usize,
    params: DbscanParams,
    mut candidates_for: G,
    mut dist_leq_set: F,
    leakage: &mut LeakageLog,
) -> Result<Clustering, CoreError>
where
    G: FnMut(usize) -> Vec<usize>,
    F: FnMut(usize, &[usize]) -> Result<Vec<bool>, CoreError>,
{
    let mut region_query = |x: usize, leakage: &mut LeakageLog| -> Result<Vec<usize>, CoreError> {
        // Self-distance is zero by definition; excluding the point from the
        // candidate set leaks nothing (both sides skip deterministically).
        let candidates = candidates_for(x);
        let within = dist_leq_set(x, &candidates)?;
        if within.len() != candidates.len() {
            return Err(CoreError::mismatch(format!(
                "region query arity: {} candidates vs {} answers",
                candidates.len(),
                within.len()
            )));
        }
        let mut neighbors: Vec<usize> = candidates
            .iter()
            .zip(&within)
            .filter(|(_, &w)| w)
            .map(|(&y, _)| y)
            .collect();
        // The query point neighbors itself by definition; re-insert it in
        // index order.
        let pos = neighbors.partition_point(|&y| y < x);
        neighbors.insert(pos, x);
        leakage.record(LeakageEvent::NeighborCount {
            query: format!("record#{x}"),
            count: neighbors.len() as u64,
        });
        Ok(neighbors)
    };

    let mut states = vec![State::Unclassified; n];
    let mut next_cluster = 0usize;
    for i in 0..n {
        if states[i] != State::Unclassified {
            continue;
        }
        let seeds = region_query(i, leakage)?;
        if seeds.len() < params.min_pts {
            states[i] = State::Noise;
            continue;
        }
        let cluster_id = next_cluster;
        next_cluster += 1;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in &seeds {
            states[s] = State::Cluster(cluster_id);
            if s != i {
                queue.push_back(s);
            }
        }
        while let Some(current) = queue.pop_front() {
            let result = region_query(current, leakage)?;
            if result.len() >= params.min_pts {
                for &neighbor in &result {
                    match states[neighbor] {
                        State::Unclassified => {
                            queue.push_back(neighbor);
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Noise => {
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Cluster(_) => {}
                    }
                }
            }
        }
    }

    let labels = states
        .into_iter()
        .map(|s| match s {
            State::Unclassified => unreachable!("all records classified"),
            State::Noise => Label::Noise,
            State::Cluster(id) => Label::Cluster(id),
        })
        .collect();
    Ok(Clustering {
        labels,
        num_clusters: next_cluster,
    })
}

/// The vertical protocol as a [`ModeDriver`]. The parties own different
/// attribute slices, so their dimensions legitimately differ; the joined
/// dimension is only known (and validated) after the handshake.
pub(crate) struct VerticalDriver<'a> {
    pub attrs: &'a [Point],
}

impl ModeDriver for VerticalDriver<'_> {
    fn validate(&self, cfg: &ProtocolConfig) -> Result<(), CoreError> {
        crate::horizontal::check_points(cfg, self.attrs)
    }

    fn profile(&self) -> HandshakeProfile {
        HandshakeProfile {
            mode: Mode::Vertical,
            n: self.attrs.len(),
            dim: self.attrs.first().map_or(1, Point::dim),
            dim_must_match: false,
        }
    }

    fn check_session(&self, cfg: &ProtocolConfig, session: &Session) -> Result<(), CoreError> {
        if session.peer_n != self.attrs.len() {
            return Err(CoreError::HandshakeMismatch {
                field: "record_count",
                ours: self.attrs.len() as u64,
                theirs: session.peer_n as u64,
            });
        }
        let my_dim = self.attrs.first().map_or(1, Point::dim);
        cfg.validate(my_dim + session.peer_dim)
    }

    fn execute<C: Channel>(
        &self,
        chan: &mut C,
        mctx: &ModeContext<'_>,
        ctx: &ProtocolContext,
        log: &mut SessionLog,
    ) -> Result<Clustering, CoreError> {
        let (cfg, session, attrs) = (mctx.cfg, mctx.session, self.attrs);
        let my_dim = attrs.first().map_or(1, Point::dim);
        let total_dim = my_dim + session.peer_dim;
        let backend = mctx.backend(total_dim);
        // With grid pruning, both sides publish coarse bands over the
        // attributes they own (disclosure ledgered inside the oracle) and
        // derive identical joined-band candidate sets.
        let pruned = vertical_band_oracle(chan, cfg, mctx.role, attrs, &mut log.leakage)?;
        let ledger = &mut log.ledger;
        let sharing = &mut log.sharing;
        // One context instance per region query; candidate `y` of query q
        // draws from region.at(q).at(y) in both framings, so pruned
        // (sparse) and exhaustive candidate sets key identically.
        let region_ctx = ctx.narrow("region");
        let mut q = 0u64;
        let dist_leq_set = |x: usize, ys: &[usize]| -> Result<Vec<bool>, CoreError> {
            let qctx = region_ctx.at(q);
            let span = trace::span_with(|| format!("region#{q}"), || chan.metrics());
            q += 1;
            let locals: Vec<u64> = ys
                .iter()
                .map(|&y| local_delta_sq(&attrs[x], &attrs[y]))
                .collect();
            let records: Vec<u64> = ys.iter().map(|&y| y as u64).collect();
            let result = match mctx.role {
                Party::Alice => vdp_compare_set_alice(
                    chan, cfg, &backend, &locals, &records, total_dim, &qctx, ledger, sharing,
                )?,
                Party::Bob => vdp_compare_set_bob(
                    chan, cfg, &backend, &locals, &records, total_dim, &qctx, ledger, sharing,
                )?,
            };
            span.end(|| chan.metrics());
            Ok(result)
        };
        let n = attrs.len();
        let candidates_for = |x: usize| match &pruned {
            Some(oracle) => oracle.candidates_of(x),
            None => crate::prune::exhaustive_candidates(n, x),
        };
        lockstep_dbscan(
            n,
            cfg.params,
            candidates_for,
            dist_leq_set,
            &mut log.leakage,
        )
    }
}

/// Builds the joined-band candidate oracle for a grid-pruned vertical
/// session (`None` when the config is exhaustive): each party quantizes
/// the attribute slice it owns to coarse public bands, both tables are
/// exchanged (the received table is ledgered as a
/// `pruning_bands` leakage event), and the rows are concatenated in the
/// agreed order — Alice's dimensions first — so both parties index the
/// identical joined band table.
fn vertical_band_oracle<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    role: Party,
    attrs: &[Point],
    leakage: &mut LeakageLog,
) -> Result<Option<crate::prune::BandCandidates>, CoreError> {
    let ppds_dbscan::Pruning::Grid { coarseness } = cfg.pruning else {
        return Ok(None);
    };
    let width = ppds_dbscan::band_width(cfg.params.eps_sq, coarseness);
    let mine: Vec<Vec<i64>> = attrs
        .iter()
        .map(|p| ppds_dbscan::coarse_cell(p.coords(), width))
        .collect();
    let theirs = crate::prune::exchange_band_tables(chan, &mine, width, leakage)?;
    if theirs.len() != mine.len() {
        return Err(CoreError::mismatch(format!(
            "peer band table covers {} records, expected {}",
            theirs.len(),
            mine.len()
        )));
    }
    let joined: Vec<Vec<i64>> = match role {
        Party::Alice => mine
            .iter()
            .zip(&theirs)
            .map(|(m, t)| [m.as_slice(), t.as_slice()].concat())
            .collect(),
        Party::Bob => theirs
            .iter()
            .zip(&mine)
            .map(|(t, m)| [t.as_slice(), m.as_slice()].concat())
            .collect(),
    };
    Ok(Some(crate::prune::BandCandidates::new(joined, width)))
}

/// One party's full run of the vertical protocol. `my_attrs` holds this
/// party's attribute slice of each record (all records, same order on both
/// sides). Returns the joint clustering of all records.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::Participant with PartyData::Vertical"
)]
pub fn vertical_party<C: Channel>(
    chan: &mut C,
    cfg: &ProtocolConfig,
    my_attrs: &[Point],
    role: Party,
    rng: rand::rngs::StdRng,
) -> Result<PartyOutput, CoreError> {
    let mut rng = rng;
    run_two_party(
        chan,
        cfg,
        &VerticalDriver { attrs: my_attrs },
        role,
        None,
        &ProtocolContext::from_rng(&mut rng),
    )
    .map(|outcome| outcome.output)
}

#[cfg(test)]
mod tests {
    use super::*;
    #[allow(deprecated)]
    use crate::driver::run_vertical_pair;
    use crate::partition::VerticalPartition;
    use crate::session::{Participant, PartyData};
    use crate::test_helpers::rng;
    use ppds_dbscan::{dbscan, eval};

    fn records(coords: &[&[i64]]) -> Vec<Point> {
        coords.iter().map(|c| Point::from(*c)).collect()
    }

    fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
        ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound)
    }

    #[allow(deprecated)]
    fn vertical(
        c: &ProtocolConfig,
        part: &VerticalPartition,
        sa: u64,
        sb: u64,
    ) -> (PartyOutput, PartyOutput) {
        run_vertical_pair(c, part, rng(sa), rng(sb)).unwrap()
    }

    #[test]
    fn matches_plaintext_dbscan_exactly() {
        let recs = records(&[
            &[0, 0, 1, 0],
            &[1, 0, 0, 0],
            &[0, 1, 1, 1],
            &[10, 10, 10, 10],
            &[11, 10, 10, 10],
            &[10, 11, 10, 11],
            &[-20, 5, 3, -9],
        ]);
        let c = cfg(6, 3, 25);
        for split in [1usize, 2, 3] {
            let part = VerticalPartition::split(&recs, split);
            let (a_out, b_out) = vertical(&c, &part, 1, 2);
            let reference = dbscan(&recs, c.params);
            assert_eq!(a_out.clustering, reference, "split {split}: alice");
            assert_eq!(b_out.clustering, reference, "split {split}: bob");
            assert!(eval::same_partition(&a_out.clustering, &b_out.clustering));
        }
    }

    #[test]
    fn yao_backend_matches_ideal() {
        let recs = records(&[&[0, 0], &[1, 1], &[9, 9], &[1, 0]]);
        let part = VerticalPartition::split(&recs, 1);
        let ideal = cfg(2, 2, 10);
        let yao = ProtocolConfig::new_with_yao(ideal.params, 10);
        let (ia, _) = vertical(&ideal, &part, 3, 4);
        let (ya, _) = vertical(&yao, &part, 5, 6);
        assert_eq!(ia.clustering, ya.clustering);
    }

    #[test]
    fn leakage_matches_theorem_10() {
        // Each region query reveals exactly one neighbor count per party.
        let recs = records(&[&[0, 0], &[1, 1], &[9, 9]]);
        let part = VerticalPartition::split(&recs, 1);
        let c = cfg(2, 2, 10);
        let (a_out, b_out) = vertical(&c, &part, 7, 8);
        assert!(a_out.leakage.count_kind("neighbor_count") > 0);
        assert_eq!(
            a_out.leakage.count_kind("neighbor_count"),
            b_out.leakage.count_kind("neighbor_count"),
            "lockstep parties issue identical query sequences"
        );
        assert_eq!(a_out.leakage.count_kind("core_point_bit"), 0);
    }

    #[test]
    fn record_count_mismatch_rejected_with_typed_error() {
        let recs = records(&[&[0, 0], &[1, 1]]);
        let part = VerticalPartition::split(&recs, 1);
        let c = cfg(2, 2, 10);
        let result = crate::driver::run_pair(
            |mut chan| {
                Participant::new(c)
                    .role(Party::Alice)
                    .data(PartyData::Vertical(part.alice.clone()))
                    .seed(9)
                    .run(&mut chan)
            },
            |mut chan| {
                // Bob drops a record.
                Participant::new(c)
                    .role(Party::Bob)
                    .data(PartyData::Vertical(part.bob[..1].to_vec()))
                    .seed(10)
                    .run(&mut chan)
            },
        );
        match result.unwrap_err() {
            CoreError::HandshakeMismatch { field, .. } => assert_eq!(field, "record_count"),
            other => panic!("wanted HandshakeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn traffic_is_quadratic_in_n() {
        // §4.3.2: O(c2·n0·n²) — doubling n should roughly quadruple bytes.
        let make = |n: usize| {
            let recs: Vec<Point> = (0..n)
                .map(|i| Point::new(vec![(i as i64) * 3, (i as i64) % 5]))
                .collect();
            VerticalPartition::split(&recs, 1)
        };
        let c = cfg(4, 2, 50);
        let (a_small, _) = vertical(&c, &make(6), 11, 12);
        let (a_big, _) = vertical(&c, &make(12), 13, 14);
        let ratio = a_big.yao.comparisons as f64 / a_small.yao.comparisons.max(1) as f64;
        assert!(
            ratio > 2.5,
            "comparisons should grow superlinearly, ratio = {ratio}"
        );
    }
}
