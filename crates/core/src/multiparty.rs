//! Multi-party horizontal DBSCAN — the extension the paper's §1 and §6
//! point to ("the two-party algorithm can be extended to multi-party
//! cases") but never spells out.
//!
//! `K ≥ 2` parties each own complete records. The construction generalizes
//! Algorithms 3 & 4 in the natural way:
//!
//! * every party holds one Paillier keypair and runs a pairwise session
//!   with each peer (full mesh; public-key exchange + versioned `Hello`
//!   handshake per [`crate::session`]);
//! * the run proceeds in `K` deterministic *phases*; in phase `p`, party
//!   `p` is the querier and every other party answers its neighborhood
//!   queries on their pairwise channel;
//! * a core-point test for the querier's point sums its own neighbor count
//!   with one HDP count per peer (each over a fresh per-query permutation,
//!   preserving the Figure 1 defense against every peer independently);
//! * cluster expansion still traverses only the querier's own points, so
//!   each party's output clustering of its own records matches the
//!   two-party reference semantics with the union of all peers as the
//!   external set: `dbscan_with_external_density(own, all_others)`.
//!
//! Leakage per party is the Theorem 9 profile against each peer
//! separately: per issued query, one neighbor count *per peer* (strictly
//! finer-grained than the union count — the price of the pairwise
//! construction; a future aggregation layer could hide the split at the
//! cost of a joint protocol among all K parties).
//!
//! Entry points: [`crate::session::Participant::run_mesh`] for one node
//! over real channels, [`crate::session::run_mesh_local`] for all nodes on
//! threads over an in-memory mesh.

use crate::config::ProtocolConfig;
use crate::driver::PartyOutput;
use crate::error::CoreError;
use crate::hdp::{hdp_query, hdp_serve};
use crate::horizontal::check_points;
use crate::session::{
    establish, HandshakeProfile, Mode, PeerInfo, Session, SessionLog, SessionMeta, SessionOutcome,
    WIRE_VERSION,
};
use ppds_dbscan::{Clustering, Label, Point};
use ppds_observe::{trace, MetricsSnapshot};
use ppds_paillier::Keypair;
use ppds_smc::{LeakageEvent, Party, ProtocolContext};
use ppds_transport::Channel;
use std::collections::VecDeque;

const TAG_DONE: u8 = 0;
const TAG_QUERY: u8 = 1;

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Unclassified,
    Noise,
    Cluster(usize),
}

/// One node's full run of the multi-party horizontal protocol: the shared
/// implementation behind [`crate::session::Participant::run_mesh`] and the
/// deprecated free function.
///
/// Randomness: each pairwise exchange draws from
/// `ctx.narrow("mesh").at(querier_id).at(responder_id)` — keyed by the
/// *ordered pair of global ids*, not by traffic order — so adding,
/// removing, or resizing one peer never shifts the streams (masks,
/// nonces, Figure-1 permutations) this node uses with any other peer,
/// and both halves of an exchange walk the same path (which the sharing
/// backend's dealer tape re-keys onto the pair's shared seed). Pinned by
/// the `mesh_streams_are_keyed_per_peer` integration test.
pub(crate) fn run_mesh_node<C: Channel>(
    peers: &mut [(usize, C)],
    my_id: usize,
    k_parties: usize,
    cfg: &ProtocolConfig,
    my_points: &[Point],
    keypair: Option<Keypair>,
    ctx: &ProtocolContext,
) -> Result<SessionOutcome, CoreError> {
    if k_parties < 2 {
        return Err(CoreError::config("need at least two parties"));
    }
    if peers.len() != k_parties - 1 {
        return Err(CoreError::config(format!(
            "one channel per peer: got {} for {} parties",
            peers.len(),
            k_parties
        )));
    }
    if my_id >= k_parties {
        return Err(CoreError::config(format!(
            "party id {my_id} out of range for {k_parties} parties"
        )));
    }
    peers.sort_by_key(|(peer_id, _)| *peer_id);

    let dim = my_points.first().map_or(0, Point::dim);
    cfg.validate(dim.max(1))?;
    check_points(cfg, my_points)?;

    // One keypair per node, one pairwise session per peer. The lower id
    // plays the Alice role of the key exchange ordering.
    let keygen_span = trace::span("keygen", MetricsSnapshot::default);
    let keypair = match keypair {
        Some(kp) => kp,
        None => Keypair::generate(cfg.key_bits, &mut ctx.narrow("keygen").rng()),
    };
    keygen_span.end(MetricsSnapshot::default);
    let profile = HandshakeProfile {
        mode: Mode::Multiparty,
        n: my_points.len(),
        dim,
        dim_must_match: true,
    };
    let establish_span = trace::span("establish", || mesh_metrics(peers));
    let mut sessions: Vec<(usize, Session)> = Vec::with_capacity(peers.len());
    for (peer_id, chan) in peers.iter_mut() {
        let role = if my_id < *peer_id {
            Party::Alice
        } else {
            Party::Bob
        };
        let peer_span = trace::span_with(|| format!("peer#{peer_id}"), || chan.metrics());
        let session = establish(chan, cfg, keypair.clone(), role, &profile, ctx)?;
        peer_span.end(|| chan.metrics());
        sessions.push((*peer_id, session));
    }
    establish_span.end(|| mesh_metrics(peers));

    let mut log = SessionLog::new();
    let mut clustering = None;
    let mesh_ctx = ctx.narrow("mesh");

    // K deterministic phases; ids give every party the same schedule.
    let execute_span = trace::span("execute", || mesh_metrics(peers));
    for phase in 0..k_parties {
        if phase == my_id {
            // Both halves of a pairwise exchange walk the path
            // `mesh → at(querier) → at(responder)`, so the sharing
            // backend's tape draws stay correlated across the pair while
            // every ordered pair still gets its own independent streams.
            let querier_ctx = mesh_ctx.at(my_id as u64);
            clustering = Some(query_phase(
                peers,
                &sessions,
                cfg,
                my_points,
                &querier_ctx,
                &mut log,
            )?);
        } else {
            // Serve the querying party on the channel that leads to it.
            let idx = peers
                .iter()
                .position(|(peer_id, _)| *peer_id == phase)
                .expect("phase party is a peer");
            let (_, session) = &sessions[idx];
            let (_, chan) = &mut peers[idx];
            let pair_ctx = mesh_ctx.at(phase as u64).at(my_id as u64);
            respond_phase(chan, session, cfg, my_points, &pair_ctx, &mut log)?;
        }
    }
    execute_span.end(|| mesh_metrics(peers));

    let assemble_span = trace::span("assemble", || mesh_metrics(peers));
    let traffic = peers.iter().map(|(_, chan)| chan.metrics()).sum();
    let peer_meta = sessions
        .iter()
        .map(|(peer_id, session)| PeerInfo {
            id: *peer_id,
            n: session.peer_n,
            dim: session.peer_dim,
        })
        .collect();
    let outcome = SessionOutcome {
        output: PartyOutput {
            clustering: clustering.expect("own phase ran"),
            leakage: log.leakage,
            traffic,
            yao: log.ledger,
            sharing: log.sharing,
        },
        trace: None,
        meta: SessionMeta {
            wire_version: WIRE_VERSION,
            mode: Mode::Multiparty,
            batching: cfg.batching,
            packing: cfg.packing,
            backend: cfg.backend,
            pruning: cfg.pruning,
            peers: peer_meta,
        },
    };
    assemble_span.end(|| outcome.output.traffic);
    Ok(outcome)
}

/// Summed traffic across every pairwise channel — the snapshot a mesh-level
/// span edge carries (componentwise sums of monotone counters are still
/// monotone, so span deltas stay well-defined).
fn mesh_metrics<C: Channel>(peers: &[(usize, C)]) -> MetricsSnapshot {
    peers.iter().map(|(_, chan)| chan.metrics()).sum()
}

/// One node's full run of the multi-party horizontal protocol.
///
/// `peers` holds one channel per other party, tagged with that party's
/// global id; `my_id` is this node's id in `0..k_parties`. All parties must
/// agree on ids and use the same `cfg`.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::Participant::run_mesh with PartyData::Multiparty"
)]
pub fn multiparty_horizontal_party<C: Channel>(
    peers: &mut [(usize, C)],
    my_id: usize,
    k_parties: usize,
    cfg: &ProtocolConfig,
    my_points: &[Point],
    rng: rand::rngs::StdRng,
) -> Result<PartyOutput, CoreError> {
    let mut rng = rng;
    let ctx = ProtocolContext::from_rng(&mut rng);
    run_mesh_node(peers, my_id, k_parties, cfg, my_points, None, &ctx).map(|outcome| outcome.output)
}

/// The querier's DBSCAN loop: like the two-party engine, but each core test
/// fans out one HDP neighborhood query to every peer, each drawing from
/// the ordered-pair context `querier_ctx.at(peer_id)`.
fn query_phase<C: Channel>(
    peers: &mut [(usize, C)],
    sessions: &[(usize, Session)],
    cfg: &ProtocolConfig,
    points: &[Point],
    querier_ctx: &ProtocolContext,
    log: &mut SessionLog,
) -> Result<Clustering, CoreError> {
    // The local index and the per-peer coarse-cell exchange follow the
    // two-party horizontal driver (see crate::prune); each peer answers
    // with its own band-filtered candidate cardinality.
    let index = crate::prune::local_index(points, cfg.params.eps_sq, cfg.pruning);
    let width = match cfg.pruning {
        ppds_dbscan::Pruning::Grid { coarseness } => {
            Some(ppds_dbscan::band_width(cfg.params.eps_sq, coarseness))
        }
        ppds_dbscan::Pruning::Exhaustive => None,
    };
    let mut states = vec![State::Unclassified; points.len()];
    let mut next_cluster = 0usize;
    let mut issued = 0u64;

    let mut core_test = |peers: &mut [(usize, C)],
                         log: &mut SessionLog,
                         idx: usize,
                         own_count: usize|
     -> Result<bool, CoreError> {
        let mut total = own_count;
        let query_no = issued;
        issued += 1;
        let query_span = trace::span_with(|| format!("query#{query_no}"), || mesh_metrics(peers));
        for (pos, (peer_id, chan)) in peers.iter_mut().enumerate() {
            chan.send(&TAG_QUERY)?;
            let session = &sessions[pos].1;
            let backend =
                crate::backend::backend_for(cfg, session, points.first().map_or(0, Point::dim));
            let qctx = querier_ctx.at(*peer_id as u64).narrow("hdp").at(query_no);
            let responder_count = match width {
                Some(w) => crate::prune::query_candidate_count(
                    chan,
                    &points[idx],
                    w,
                    &mut log.leakage,
                    &format!("own#{idx}/peer#{peer_id}"),
                )?,
                None => session.peer_n,
            };
            let count = hdp_query(
                chan,
                cfg,
                &backend,
                &points[idx],
                responder_count,
                &qctx,
                &mut log.ledger,
                &mut log.sharing,
            )?;
            log.leakage.record(LeakageEvent::NeighborCount {
                query: format!("own#{idx}/peer#{peer_id}"),
                count: count as u64,
            });
            total += count;
        }
        query_span.end(|| mesh_metrics(peers));
        Ok(total >= cfg.params.min_pts)
    };

    for i in 0..points.len() {
        if states[i] != State::Unclassified {
            continue;
        }
        let seeds = index.region_query(&points[i]);
        if !core_test(peers, log, i, seeds.len())? {
            states[i] = State::Noise;
            continue;
        }
        let cluster_id = next_cluster;
        next_cluster += 1;
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &s in &seeds {
            states[s] = State::Cluster(cluster_id);
            if s != i {
                queue.push_back(s);
            }
        }
        while let Some(current) = queue.pop_front() {
            let result = index.region_query(&points[current]);
            if core_test(peers, log, current, result.len())? {
                for &neighbor in &result {
                    match states[neighbor] {
                        State::Unclassified => {
                            queue.push_back(neighbor);
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Noise => {
                            states[neighbor] = State::Cluster(cluster_id);
                        }
                        State::Cluster(_) => {}
                    }
                }
            }
        }
    }
    for (_, chan) in peers.iter_mut() {
        chan.send(&TAG_DONE)?;
    }

    let labels = states
        .into_iter()
        .map(|s| match s {
            State::Unclassified => unreachable!("all points classified"),
            State::Noise => Label::Noise,
            State::Cluster(id) => Label::Cluster(id),
        })
        .collect();
    Ok(Clustering {
        labels,
        num_clusters: next_cluster,
    })
}

fn respond_phase<C: Channel>(
    chan: &mut C,
    session: &Session,
    cfg: &ProtocolConfig,
    my_points: &[Point],
    pair_ctx: &ProtocolContext,
    log: &mut SessionLog,
) -> Result<(), CoreError> {
    let serve_ctx = pair_ctx.narrow("hdp");
    let backend =
        crate::backend::backend_for(cfg, session, my_points.first().map_or(0, Point::dim));
    let grid = match cfg.pruning {
        ppds_dbscan::Pruning::Grid { coarseness } => {
            let w = ppds_dbscan::band_width(cfg.params.eps_sq, coarseness);
            Some(ppds_dbscan::CoarseGrid::from_points(my_points, w))
        }
        ppds_dbscan::Pruning::Exhaustive => None,
    };
    let mut served = 0u64;
    loop {
        let tag: u8 = chan.recv()?;
        match tag {
            TAG_DONE => return Ok(()),
            TAG_QUERY => {
                let qctx = serve_ctx.at(served);
                let serve_span = trace::span_with(|| format!("serve#{served}"), || chan.metrics());
                let candidates = match &grid {
                    Some(g) => crate::prune::respond_candidates(
                        chan,
                        g,
                        &mut log.leakage,
                        &format!("serve#{served}"),
                    )?,
                    None => crate::prune::all_candidates(my_points.len()),
                };
                served += 1;
                hdp_serve(
                    chan,
                    cfg,
                    &backend,
                    my_points,
                    &candidates,
                    &qctx,
                    &mut log.ledger,
                    &mut log.sharing,
                    &mut log.leakage,
                )?;
                serve_span.end(|| chan.metrics());
            }
            other => {
                return Err(CoreError::Smc(ppds_smc::SmcError::protocol(format!(
                    "unexpected multiparty control tag {other}"
                ))))
            }
        }
    }
}

/// Runs all `K` parties of the multi-party horizontal protocol on threads
/// over an in-memory full mesh; returns one [`PartyOutput`] per party, in
/// party-id order.
#[deprecated(
    since = "0.2.0",
    note = "use ppdbscan::session::run_mesh_local (or Participant::run_mesh per node)"
)]
pub fn run_multiparty_horizontal(
    cfg: &ProtocolConfig,
    party_points: &[Vec<Point>],
    seed: u64,
) -> Result<Vec<PartyOutput>, CoreError> {
    Ok(crate::session::run_mesh_local(cfg, party_points, seed)?
        .into_iter()
        .map(|outcome| outcome.output)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::run_mesh_local;
    use crate::test_helpers::rng;
    use ppds_dbscan::{dbscan_with_external_density, DbscanParams};

    fn cfg(eps_sq: u64, min_pts: usize, bound: i64) -> ProtocolConfig {
        ProtocolConfig::new(DbscanParams { eps_sq, min_pts }, bound)
    }

    fn pts(coords: &[&[i64]]) -> Vec<Point> {
        coords.iter().map(|c| Point::from(*c)).collect()
    }

    fn mesh(c: &ProtocolConfig, parties: &[Vec<Point>], seed: u64) -> Vec<PartyOutput> {
        run_mesh_local(c, parties, seed)
            .unwrap()
            .into_iter()
            .map(|outcome| outcome.output)
            .collect()
    }

    #[test]
    fn three_parties_match_external_density_reference() {
        let parties = vec![
            pts(&[&[0, 0], &[10, 10], &[30, -30]]),
            pts(&[&[1, 0], &[11, 10]]),
            pts(&[&[0, 1], &[10, 11], &[-30, 30]]),
        ];
        let c = cfg(4, 3, 40);
        let outputs = mesh(&c, &parties, 77);
        assert_eq!(outputs.len(), 3);
        for (i, out) in outputs.iter().enumerate() {
            let others: Vec<Point> = parties
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, p)| p.iter().cloned())
                .collect();
            let reference = dbscan_with_external_density(&parties[i], &others, c.params);
            assert_eq!(out.clustering, reference, "party {i}");
        }
    }

    #[test]
    fn two_party_case_equals_bilateral_protocol() {
        let alice = pts(&[&[0, 0], &[1, 1], &[20, 20]]);
        let bob = pts(&[&[0, 1], &[19, 20]]);
        let c = cfg(4, 3, 30);
        let multi = mesh(&c, &[alice.clone(), bob.clone()], 5);
        #[allow(deprecated)]
        let (two_a, two_b) =
            crate::driver::run_horizontal_pair(&c, &alice, &bob, rng(1), rng(2)).unwrap();
        assert_eq!(multi[0].clustering, two_a.clustering);
        assert_eq!(multi[1].clustering, two_b.clustering);
    }

    #[test]
    fn four_parties_pool_density() {
        // Each party alone sees nothing; four together make every point core.
        let parties = vec![
            pts(&[&[0, 0]]),
            pts(&[&[1, 0]]),
            pts(&[&[0, 1]]),
            pts(&[&[1, 1]]),
        ];
        let c = cfg(4, 4, 5);
        let outputs = mesh(&c, &parties, 9);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.clustering.num_clusters, 1, "party {i}");
            assert_eq!(out.clustering.noise_count(), 0, "party {i}");
        }
    }

    #[test]
    fn leakage_is_per_peer_neighbor_counts() {
        let parties = vec![pts(&[&[0, 0], &[5, 5]]), pts(&[&[1, 0]]), pts(&[&[0, 1]])];
        let c = cfg(4, 2, 10);
        let outputs = mesh(&c, &parties, 11);
        // Party 0 issued queries against 2 peers: counts come in pairs.
        let counts = outputs[0].leakage.count_kind("neighbor_count");
        assert!(counts > 0 && counts.is_multiple_of(2), "counts = {counts}");
        for event in outputs[0].leakage.events() {
            if let LeakageEvent::NeighborCount { query, .. } = event {
                assert!(query.contains("/peer#"), "per-peer context: {query}");
            }
        }
    }

    #[test]
    fn uneven_party_sizes_work() {
        let parties = vec![
            pts(&[&[0, 0], &[1, 0], &[0, 1], &[9, 9]]),
            pts(&[&[1, 1]]),
            pts(&[]),
        ];
        let c = cfg(4, 3, 12);
        let outputs = mesh(&c, &parties, 13);
        assert_eq!(outputs[2].clustering.labels.len(), 0);
        let others: Vec<Point> = parties[1..].iter().flatten().cloned().collect();
        let reference = dbscan_with_external_density(&parties[0], &others, c.params);
        assert_eq!(outputs[0].clustering, reference);
    }

    #[test]
    fn mesh_outcome_carries_per_peer_metadata() {
        let parties = vec![pts(&[&[0, 0], &[1, 1]]), pts(&[&[1, 0]]), pts(&[&[0, 1]])];
        let c = cfg(4, 2, 10);
        let outcomes = run_mesh_local(&c, &parties, 3).unwrap();
        let meta = &outcomes[0].meta;
        assert_eq!(meta.mode, Mode::Multiparty);
        assert_eq!(meta.wire_version, WIRE_VERSION);
        assert_eq!(meta.peers.len(), 2);
        assert_eq!(meta.peers[0].id, 1);
        assert_eq!(meta.peers[0].n, 1);
        assert_eq!(meta.peers[1].id, 2);
    }
}
