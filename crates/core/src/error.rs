//! Error type for the DBSCAN protocol drivers.

use ppds_smc::SmcError;
use std::fmt;

/// Errors raised while running a distributed clustering protocol.
#[derive(Debug)]
pub enum CoreError {
    /// Failure in an underlying SMC primitive or the transport.
    Smc(SmcError),
    /// The local configuration is unusable (e.g. Yao comparator with a
    /// domain beyond its hard cap, masks that overflow the share type).
    Config(String),
    /// The parties' handshakes disagree on one negotiated field. `ours` and
    /// `theirs` are the two advertised values (field tags per
    /// [`crate::session::Hello`]; booleans as 0/1, enums as their wire
    /// tags). Both halves of a mismatched session report this error with
    /// the same `field`, sides swapped.
    HandshakeMismatch {
        /// Name of the disagreeing handshake field (e.g. `"eps_sq"`,
        /// `"batching"`, `"wire_version"`).
        field: &'static str,
        /// The value this side advertised.
        ours: u64,
        /// The value the peer advertised.
        theirs: u64,
    },
    /// The parties disagree mid-protocol in a way the handshake cannot
    /// attribute to a single field (e.g. a region-query arity mismatch).
    Mismatch(String),
    /// A worker thread panicked while running one party.
    PartyPanicked(&'static str),
}

impl CoreError {
    pub(crate) fn config(msg: impl Into<String>) -> Self {
        CoreError::Config(msg.into())
    }

    pub(crate) fn mismatch(msg: impl Into<String>) -> Self {
        CoreError::Mismatch(msg.into())
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Smc(e) => write!(f, "protocol primitive failed: {e}"),
            CoreError::Config(msg) => write!(f, "configuration error: {msg}"),
            CoreError::HandshakeMismatch {
                field,
                ours,
                theirs,
            } => write!(
                f,
                "handshake mismatch on {field}: ours {ours}, theirs {theirs}"
            ),
            CoreError::Mismatch(msg) => write!(f, "handshake mismatch: {msg}"),
            CoreError::PartyPanicked(which) => write!(f, "{which} thread panicked"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Smc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SmcError> for CoreError {
    fn from(e: SmcError) -> Self {
        CoreError::Smc(e)
    }
}

impl From<ppds_transport::TransportError> for CoreError {
    fn from(e: ppds_transport::TransportError) -> Self {
        CoreError::Smc(SmcError::Transport(e))
    }
}
